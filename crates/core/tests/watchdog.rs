//! Starvation-watchdog tests: consecutive-abort streak tracking, max-retry
//! escalation to exclusive admission, and stall diagnostics on runs that
//! fail to complete.

use std::sync::Arc;

use votm::{Addr, ClockKind, QuotaMode, TmAlgorithm, Votm};
use votm_sim::{FaultPlan, Notify, RunStatus, SimConfig, SimExecutor};

/// An adversarial fault plan that aborts *every* transactional fault point:
/// no ordinary attempt can ever commit.
fn always_abort(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        abort_percent: 100,
        ..Default::default()
    }
}

/// With the watchdog on, a transaction that keeps losing escalates into the
/// exclusive lock mode — which takes no injected faults and cannot abort —
/// so even a 100%-abort adversary cannot starve it.
#[test]
fn escalation_rescues_transactions_from_certain_starvation() {
    const TASKS: u64 = 4;
    const ITERS: u64 = 5;
    const K: u32 = 3;
    for algo in [TmAlgorithm::NOrec, TmAlgorithm::OrecEagerRedo] {
        let system = Votm::builder()
            .algo(algo)
            .threads(TASKS as u32)
            .escalate_after(Some(K))
            .build();
        let view = system.create_view(64, QuotaMode::Fixed(TASKS as u32));
        let mut ex = SimExecutor::new(SimConfig {
            fault_plan: Some(always_abort(11)),
            ..Default::default()
        });
        for _ in 0..TASKS {
            let view = Arc::clone(&view);
            ex.spawn(move |rt| async move {
                for _ in 0..ITERS {
                    view.transact(&rt, async |tx| {
                        let v = tx.read(Addr(0)).await?;
                        tx.write(Addr(0), v + 1).await
                    })
                    .await;
                }
            });
        }
        let out = ex.run();
        assert_eq!(out.status, RunStatus::Completed, "{algo:?}");
        assert_eq!(view.heap().load(Addr(0)), TASKS * ITERS, "{algo:?}");

        let stats = view.stats().tm;
        // Every transaction burned exactly K transactional attempts before
        // its escalated (fault-immune) attempt committed.
        assert_eq!(stats.escalations, TASKS * ITERS, "{algo:?}");
        assert_eq!(stats.aborts, TASKS * ITERS * u64::from(K), "{algo:?}");
        assert_eq!(stats.max_abort_streak, u64::from(K), "{algo:?}");
        assert_eq!(view.gate().inside(), 0, "{algo:?}");
        assert_eq!(view.gate().drain_waiters(), 0, "{algo:?}");
    }
}

/// The same adversary with the watchdog off never completes — demonstrating
/// that escalation, not luck, is what rescued the run above. (Default is
/// off: livelock under contention is a phenomenon the paper measures.)
#[test]
fn without_escalation_the_same_adversary_starves_the_run() {
    let system = Votm::builder()
        .algo(TmAlgorithm::NOrec)
        .threads(2)
        .escalate_after(None)
        .build();
    let view = system.create_view(64, QuotaMode::Fixed(2));
    let mut ex = SimExecutor::new(SimConfig {
        fault_plan: Some(always_abort(11)),
        vtime_cap: Some(200_000),
        ..Default::default()
    });
    for _ in 0..2 {
        let view = Arc::clone(&view);
        ex.spawn(move |rt| async move {
            view.transact(&rt, async |tx| {
                let v = tx.read(Addr(0)).await?;
                tx.write(Addr(0), v + 1).await
            })
            .await;
        });
    }
    let out = ex.run();
    assert_eq!(out.status, RunStatus::Livelock);
    assert_eq!(view.heap().load(Addr(0)), 0, "nothing can commit");
    // The watchdog's signal is visible in the stats even when it is not
    // acting on it: a long consecutive-abort streak and zero escalations.
    let stats = view.stats().tm;
    assert_eq!(stats.escalations, 0);
    assert!(
        stats.max_abort_streak > 10,
        "streak {}",
        stats.max_abort_streak
    );

    // Livelocked runs carry per-task stall diagnostics.
    assert_eq!(out.stalls.len(), 2, "both tasks stalled: {:?}", out.stalls);
    for stall in &out.stalls {
        assert!(stall.last_progress <= 200_000 + 1_000);
    }
}

/// The abort-streak accounting that drives `escalate_after` is strictly
/// per logical transaction: commits by *other* transactions on the same
/// view must never reset a starving transaction's streak and mask it from
/// the watchdog. Here only task 0 draws faults (a targeted plan) while
/// three fault-free neighbours commit continuously on the same view; the
/// victim must still escalate after exactly K consecutive aborts. If
/// shared state leaked into the streak, the interleaved commits would
/// reset it and the victim would abort forever instead.
#[test]
fn unrelated_commits_cannot_mask_a_starving_transaction() {
    const K: u32 = 5;
    const NEIGHBOURS: u64 = 3;
    const NEIGHBOUR_ITERS: u64 = 40;
    let system = Votm::builder()
        .algo(TmAlgorithm::NOrec)
        .threads(1 + NEIGHBOURS as u32)
        .escalate_after(Some(K))
        .build();
    let view = system.create_view(64, QuotaMode::Fixed(1 + NEIGHBOURS as u32));
    let mut ex = SimExecutor::new(SimConfig {
        fault_plan: Some(FaultPlan {
            target_task: Some(0),
            ..always_abort(11)
        }),
        vtime_cap: Some(10_000_000),
        ..Default::default()
    });
    // Task 0: the victim — one transaction whose every transactional
    // attempt is fault-aborted.
    {
        let view = Arc::clone(&view);
        ex.spawn(move |rt| async move {
            view.transact(&rt, async |tx| {
                let v = tx.read(Addr(0)).await?;
                tx.write(Addr(0), v + 1).await
            })
            .await;
        });
    }
    // Tasks 1..: fault-free traffic on the same view, each on a private
    // word so the only interaction with the victim is the shared stats
    // and watchdog machinery.
    for t in 1..=NEIGHBOURS {
        let view = Arc::clone(&view);
        ex.spawn(move |rt| async move {
            let w = Addr(t as u32);
            for _ in 0..NEIGHBOUR_ITERS {
                view.transact(&rt, async |tx| {
                    let v = tx.read(w).await?;
                    tx.write(w, v + 1).await
                })
                .await;
            }
        });
    }
    let out = ex.run();
    assert_eq!(out.status, RunStatus::Completed);
    assert_eq!(view.heap().load(Addr(0)), 1, "the victim's commit landed");
    for t in 1..=NEIGHBOURS {
        assert_eq!(view.heap().load(Addr(t as u32)), NEIGHBOUR_ITERS);
    }
    let stats = view.stats().tm;
    // Exactly one escalation, after exactly K aborts — the interleaved
    // commits neither delayed it (masking) nor hastened it.
    assert_eq!(stats.escalations, 1);
    assert_eq!(stats.aborts, u64::from(K));
    assert_eq!(stats.max_abort_streak, u64::from(K));
}

/// Escalation to exclusive admission must settle the epoch-batched clock's
/// banked bumps *before* the drain: the escalated transaction runs with
/// direct access, and post-drain snapshots must not share an epoch with
/// pre-drain elided commits. Phase one banks bumps with solo elided
/// commits; phase two starves a transaction into escalating and asserts
/// the bank was folded into the primary timestamp at the escalation site.
#[test]
fn escalation_flushes_the_epoch_clocks_banked_bumps() {
    const M: u64 = 5;
    const K: u32 = 3;
    for algo in [
        TmAlgorithm::NOrec,
        TmAlgorithm::OrecEagerRedo,
        TmAlgorithm::OrecLazy,
    ] {
        let system = Votm::builder()
            .algo(algo)
            .threads(2)
            .escalate_after(Some(K))
            .clock(ClockKind::Epoch)
            .build();
        let view = system.create_view(64, QuotaMode::Fixed(2));

        // Phase one: M sequential solo commits, each of which the epoch
        // clock elides and banks.
        let mut ex = SimExecutor::new(SimConfig::default());
        {
            let view = Arc::clone(&view);
            ex.spawn(move |rt| async move {
                for _ in 0..M {
                    view.transact(&rt, async |tx| {
                        let v = tx.read(Addr(0)).await?;
                        tx.write(Addr(0), v + 1).await
                    })
                    .await;
                }
            });
        }
        assert_eq!(ex.run().status, RunStatus::Completed, "{algo:?}");
        let clock = view.stats().clock;
        assert_eq!(clock.pending, M, "{algo:?}: solo commits bank their bumps");
        assert_eq!(clock.bump_skips, M, "{algo:?}");
        assert_eq!(clock.bumps, 0, "{algo:?}: nothing ticked yet");

        // Phase two: a 100%-abort adversary forces escalation after K
        // attempts; the escalation site must flush the bank.
        let mut ex = SimExecutor::new(SimConfig {
            fault_plan: Some(always_abort(11)),
            ..Default::default()
        });
        {
            let view = Arc::clone(&view);
            ex.spawn(move |rt| async move {
                view.transact(&rt, async |tx| {
                    let v = tx.read(Addr(0)).await?;
                    tx.write(Addr(0), v + 1).await
                })
                .await;
            });
        }
        assert_eq!(ex.run().status, RunStatus::Completed, "{algo:?}");
        assert_eq!(view.heap().load(Addr(0)), M + 1, "{algo:?}");
        let stats = view.stats();
        assert_eq!(stats.tm.escalations, 1, "{algo:?}");
        assert_eq!(
            stats.clock.pending, 0,
            "{algo:?}: the escalation drain must settle the bank"
        );
        assert_eq!(
            stats.clock.bumps, 1,
            "{algo:?}: exactly the one flush fold, no per-commit ticks"
        );
        assert_eq!(stats.clock.bump_skips, M, "{algo:?}");
    }
}

/// Deadlocked runs report which tasks stalled, when they last progressed,
/// and — via the stall probe — a gate P/Q snapshot for each.
#[test]
fn deadlock_diagnostics_include_gate_snapshot() {
    let system = Votm::builder().algo(TmAlgorithm::NOrec).threads(2).build();
    let view = system.create_view(64, QuotaMode::Fixed(1));
    let stuck = Arc::new(Notify::new());

    let mut ex = SimExecutor::new(SimConfig::default());
    // Task 0 takes the single admission slot, then waits on a notify that
    // nobody ever signals — holding P forever.
    {
        let view = Arc::clone(&view);
        let stuck = Arc::clone(&stuck);
        ex.spawn(move |rt| async move {
            let _guard = view.gate().admit(&rt).await;
            let epoch = stuck.epoch();
            rt.wait(&stuck, epoch).await;
        });
    }
    // Task 1 queues behind it at the gate (the charge guarantees task 0
    // already holds the slot, regardless of the scheduler's tiebreak).
    {
        let view = Arc::clone(&view);
        ex.spawn(move |rt| async move {
            rt.charge(50).await;
            view.transact(&rt, async |tx| {
                let v = tx.read(Addr(0)).await?;
                tx.write(Addr(0), v + 1).await
            })
            .await;
        });
    }
    let probe_view = Arc::clone(&view);
    ex.set_stall_probe(move |_task| {
        Some(format!(
            "gate P={} inside={}",
            probe_view.gate().quota(),
            probe_view.gate().inside()
        ))
    });

    let out = ex.run();
    assert_eq!(out.status, RunStatus::Deadlock);
    assert_eq!(out.stalls.len(), 2, "{:?}", out.stalls);
    for stall in &out.stalls {
        assert!(stall.waiting, "{stall:?}");
        let detail = stall.detail.as_deref().unwrap_or_default();
        assert_eq!(detail, "gate P=1 inside=1", "task {}", stall.task);
    }
}
