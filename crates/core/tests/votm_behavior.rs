//! End-to-end behavioural tests of the VOTM stack: views + RAC + STM under
//! both the virtual-time simulator and real threads.

use std::sync::Arc;

use votm::{Addr, QuotaMode, TmAlgorithm, TxError, Votm};
use votm_sim::{run_parallel, RunOutcome, RunStatus, SimConfig, SimExecutor};

fn sys(algo: TmAlgorithm, n_threads: u32) -> Votm {
    Votm::builder().algo(algo).threads(n_threads).build()
}

/// Spawns `n` sim threads each running `iters` increment transactions.
fn run_counter_sim(algo: TmAlgorithm, quota: QuotaMode, n: usize, iters: u64) -> (u64, RunOutcome) {
    let system = sys(algo, n as u32);
    let view = system.create_view(64, quota);
    let mut ex = SimExecutor::new(SimConfig::default());
    for _ in 0..n {
        let view = Arc::clone(&view);
        ex.spawn(move |rt| async move {
            for _ in 0..iters {
                view.transact(&rt, async |tx| {
                    let v = tx.read(Addr(0)).await?;
                    tx.write(Addr(0), v + 1).await
                })
                .await;
            }
        });
    }
    let out = ex.run();
    (view.heap().load(Addr(0)), out)
}

#[test]
fn sim_counter_exact_all_algorithms_and_quotas() {
    for algo in TmAlgorithm::ALL {
        for quota in [
            QuotaMode::Fixed(1),
            QuotaMode::Fixed(4),
            QuotaMode::Fixed(16),
            QuotaMode::Adaptive,
            QuotaMode::Unrestricted,
        ] {
            let (count, out) = run_counter_sim(algo, quota, 16, 25);
            assert_eq!(out.status, RunStatus::Completed, "{algo:?} {quota:?}");
            assert_eq!(count, 400, "lost updates under {algo:?} {quota:?}");
        }
    }
}

#[test]
fn fixed_quota_one_runs_lock_mode_with_zero_aborts() {
    let (count, _) = {
        let system = sys(TmAlgorithm::OrecEagerRedo, 8);
        let view = system.create_view(64, QuotaMode::Fixed(1));
        let mut ex = SimExecutor::new(SimConfig::default());
        for _ in 0..8 {
            let view = Arc::clone(&view);
            ex.spawn(move |rt| async move {
                for _ in 0..50 {
                    view.transact(&rt, async |tx| {
                        let v = tx.read(Addr(0)).await?;
                        tx.write(Addr(0), v + 1).await
                    })
                    .await;
                }
            });
        }
        let out = ex.run();
        assert_eq!(out.status, RunStatus::Completed);
        let stats = view.stats();
        assert_eq!(stats.tm.aborts, 0, "lock mode cannot abort");
        assert_eq!(stats.tm.commits, 400);
        (view.heap().load(Addr(0)), out)
    };
    assert_eq!(count, 400);
}

#[test]
fn real_threads_counter_exact() {
    for algo in TmAlgorithm::ALL {
        let system = Arc::new(sys(algo, 8));
        let view = system.create_view(64, QuotaMode::Adaptive);
        let v2 = Arc::clone(&view);
        run_parallel(8, move |_, rt| {
            let view = Arc::clone(&v2);
            async move {
                for _ in 0..100 {
                    view.transact(&rt, async |tx| {
                        let v = tx.read(Addr(0)).await?;
                        tx.write(Addr(0), v + 1).await
                    })
                    .await;
                }
            }
        });
        assert_eq!(view.heap().load(Addr(0)), 800, "{algo:?}");
    }
}

#[test]
#[should_panic(expected = "read-only")]
fn read_only_acquisition_rejects_writes() {
    let system = sys(TmAlgorithm::NOrec, 2);
    let view = system.create_view(16, QuotaMode::Fixed(2));
    let mut ex = SimExecutor::new(SimConfig::default());
    ex.spawn(move |rt| async move {
        view.transact_ro(&rt, async |tx| tx.write(Addr(0), 1).await)
            .await;
    });
    ex.run();
}

#[test]
fn read_only_transactions_commit_without_clock_traffic() {
    let system = sys(TmAlgorithm::NOrec, 4);
    let view = system.create_view(16, QuotaMode::Fixed(4));
    let mut ex = SimExecutor::new(SimConfig::default());
    for _ in 0..4 {
        let view = Arc::clone(&view);
        ex.spawn(move |rt| async move {
            for _ in 0..25 {
                let v = view
                    .transact_ro(&rt, async |tx| tx.read(Addr(3)).await)
                    .await;
                assert_eq!(v, 0);
            }
        });
    }
    assert_eq!(ex.run().status, RunStatus::Completed);
    let s = view.stats();
    assert_eq!(s.tm.commits, 100);
    assert_eq!(s.tm.aborts, 0, "pure readers never conflict");
}

#[test]
fn aborted_transactions_roll_back_allocations() {
    let system = sys(TmAlgorithm::NOrec, 2);
    let view = system.create_view(256, QuotaMode::Fixed(2));
    // Seed a value; then run a transaction that allocates and then forces an
    // abort on its first attempt (via a conflicting writer).
    let mut ex = SimExecutor::new(SimConfig::default());
    {
        let view = Arc::clone(&view);
        ex.spawn(move |rt| async move {
            let mut first = true;
            view.transact(&rt, async |tx| {
                let node = tx.alloc(4)?;
                tx.write(node, 7).await?;
                let v = tx.read(Addr(0)).await?;
                if first {
                    first = false;
                    // Simulate a conflict: explicit abort on attempt 1.
                    return Err(TxError::Abort(votm::AbortReason::Explicit));
                }
                tx.write(Addr(0), v + 1).await?;
                tx.write(Addr(1), node.0 as u64).await
            })
            .await;
        });
    }
    assert_eq!(ex.run().status, RunStatus::Completed);
    // Attempt 1's allocation was rolled back, attempt 2's survived: exactly
    // one live block.
    assert_eq!(view.heap().live_blocks(), 1);
    assert_eq!(view.stats().tm.aborts, 1);
}

#[test]
fn transactional_free_is_deferred_to_commit() {
    let system = sys(TmAlgorithm::NOrec, 2);
    let view = system.create_view(64, QuotaMode::Fixed(2));
    let block = view.alloc_block(8).unwrap();
    assert_eq!(view.heap().live_blocks(), 1);
    let mut ex = SimExecutor::new(SimConfig::default());
    {
        let view = Arc::clone(&view);
        ex.spawn(move |rt| async move {
            let mut first = true;
            view.transact(&rt, async |tx| {
                tx.free(block);
                if first {
                    first = false;
                    return Err(TxError::Abort(votm::AbortReason::Explicit)); // freed block must survive
                }
                Ok(())
            })
            .await;
        });
    }
    assert_eq!(ex.run().status, RunStatus::Completed);
    assert_eq!(view.heap().live_blocks(), 0, "free applied exactly once");
}

/// The paper's headline qualitative claim (§III-D): OrecEagerRedo livelocks
/// under a hot, write-heavy workload with unrestricted admission — and RAC
/// prevents the livelock by throttling Q.
#[test]
fn orec_hotspot_livelocks_without_rac_and_survives_with_it() {
    fn hot_run(quota: QuotaMode, cap: u64) -> (RunStatus, u32) {
        let system = Votm::builder()
            .algo(TmAlgorithm::OrecEagerRedo)
            .threads(16)
            .controller(votm_rac::ControllerConfig {
                window_attempts: 64,
                ..Default::default()
            })
            .build();
        let view = system.create_view(64, quota);
        let mut ex = SimExecutor::new(SimConfig {
            vtime_cap: Some(cap),
            ..Default::default()
        });
        for t in 0..16u64 {
            let view = Arc::clone(&view);
            ex.spawn(move |rt| async move {
                let mut rng = votm_utils::XorShift64::new(t + 1);
                for _ in 0..40 {
                    view.transact(&rt, async |tx| {
                        // 16 read-modify-writes over 16 hot words: long
                        // transactions with dense write-write conflicts —
                        // the livelock recipe (lock-mode baseline completes
                        // by vtime ~130k; unrestricted needs ~10M).
                        for _ in 0..16 {
                            let a = Addr(rng.next_below(16) as u32);
                            let v = tx.read(a).await?;
                            tx.write(a, v + 1).await?;
                        }
                        Ok(())
                    })
                    .await;
                }
            });
        }
        let status = ex.run().status;
        (status, view.gate().quota())
    }

    let (unrestricted, _) = hot_run(QuotaMode::Unrestricted, 3_000_000);
    assert_eq!(
        unrestricted,
        RunStatus::Livelock,
        "unrestricted hot workload should livelock within the budget"
    );
    let (adaptive, settled_q) = hot_run(QuotaMode::Adaptive, 3_000_000);
    assert_eq!(adaptive, RunStatus::Completed, "RAC must ensure progress");
    assert!(
        settled_q <= 2,
        "RAC should have throttled the quota hard, got {settled_q}"
    );
}

/// Observation 2's mechanism: a livelocking view must not throttle an
/// independent low-contention view.
#[test]
fn multi_view_isolates_contention() {
    let system = Votm::builder()
        .algo(TmAlgorithm::OrecEagerRedo)
        .threads(8)
        .controller(votm_rac::ControllerConfig {
            window_attempts: 32,
            ..Default::default()
        })
        .build();
    let hot = system.create_view(16, QuotaMode::Adaptive);
    let cold = system.create_view(4096, QuotaMode::Adaptive);
    let mut ex = SimExecutor::new(SimConfig {
        vtime_cap: Some(20_000_000),
        ..Default::default()
    });
    for t in 0..8u64 {
        let hot = Arc::clone(&hot);
        let cold = Arc::clone(&cold);
        ex.spawn(move |rt| async move {
            let mut rng = votm_utils::XorShift64::new(t + 1);
            for i in 0..60 {
                if i % 2 == 0 {
                    hot.transact(&rt, async |tx| {
                        for _ in 0..6 {
                            let a = Addr(rng.next_below(4) as u32);
                            let v = tx.read(a).await?;
                            tx.write(a, v + 1).await?;
                        }
                        Ok(())
                    })
                    .await;
                } else {
                    cold.transact(&rt, async |tx| {
                        let a = Addr((t * 512 + rng.next_below(512)) as u32);
                        let v = tx.read(a).await?;
                        tx.write(a, v + 1).await
                    })
                    .await;
                }
            }
        });
    }
    assert_eq!(ex.run().status, RunStatus::Completed);
    let hot_stats = hot.stats();
    let cold_stats = cold.stats();
    assert_eq!(hot_stats.tm.commits, 8 * 30);
    assert_eq!(cold_stats.tm.commits, 8 * 30);
    assert!(
        hot_stats.quota < 8,
        "hot view should be throttled (Q={})",
        hot_stats.quota
    );
    assert_eq!(
        cold_stats.quota, 8,
        "cold view must keep full concurrency (Observation 2)"
    );
    assert!(cold_stats.tm.aborts < hot_stats.tm.aborts);
}

#[test]
fn unrestricted_views_never_block_on_the_gate() {
    // With quota == N and no controller, all N threads can dwell inside
    // simultaneously; completion time should reflect parallelism.
    let system = sys(TmAlgorithm::NOrec, 8);
    let view = system.create_view(4096, QuotaMode::Unrestricted);
    let mut ex = SimExecutor::new(SimConfig::default());
    for t in 0..8u32 {
        let view = Arc::clone(&view);
        ex.spawn(move |rt| async move {
            for i in 0..20u64 {
                view.transact(&rt, async |tx| {
                    // Disjoint slots: no conflicts, pure parallelism.
                    tx.write(Addr(t * 8), i).await?;
                    tx.local_work(0, 0, 1000).await;
                    Ok(())
                })
                .await;
            }
        });
    }
    let out = ex.run();
    assert_eq!(out.status, RunStatus::Completed);
    // 20 tx × ~1000 nops each ≈ 20k cycles of compute per thread; in
    // parallel the makespan must be far below the serial sum (8 × that).
    assert!(
        out.vtime < 80_000,
        "no parallelism: makespan {} suggests serialised execution",
        out.vtime
    );
}

/// Gate-wait accounting: under a tight quota threads measurably queue at
/// the admission gate; unrestricted views never do.
#[test]
fn gate_wait_cycles_reflect_admission_blocking() {
    fn run(quota: QuotaMode) -> u64 {
        let system = sys(TmAlgorithm::NOrec, 8);
        let view = system.create_view(1024, quota);
        let mut ex = SimExecutor::new(SimConfig::default());
        for t in 0..8u32 {
            let view = Arc::clone(&view);
            ex.spawn(move |rt| async move {
                for i in 0..20u64 {
                    view.transact(&rt, async |tx| {
                        tx.write(Addr(t * 16), i).await?; // disjoint: no conflicts
                        tx.local_work(0, 0, 500).await;
                        Ok(())
                    })
                    .await;
                }
            });
        }
        assert_eq!(ex.run().status, RunStatus::Completed);
        view.stats().tm.gate_wait_cycles
    }
    assert_eq!(run(QuotaMode::Unrestricted), 0, "no gate, no waiting");
    let waited = run(QuotaMode::Fixed(2));
    assert!(
        waited > 100_000,
        "8 threads through a Q=2 gate must queue substantially, got {waited}"
    );
}

/// The paper's future-work sketch (§IV-C): each view can run a different
/// TM algorithm, because views are fully independent TM instances.
#[test]
fn mixed_algorithm_views_interoperate() {
    let system = sys(TmAlgorithm::NOrec, 8);
    let norec_view = system.create_view(64, QuotaMode::Adaptive);
    let orec_view =
        system.create_view_with_algorithm(64, QuotaMode::Adaptive, TmAlgorithm::OrecEagerRedo);
    let mut ex = SimExecutor::new(SimConfig::default());
    for _ in 0..8 {
        let a = Arc::clone(&norec_view);
        let b = Arc::clone(&orec_view);
        ex.spawn(move |rt| async move {
            for _ in 0..25 {
                a.transact(&rt, async |tx| {
                    let v = tx.read(Addr(0)).await?;
                    tx.write(Addr(0), v + 1).await
                })
                .await;
                b.transact(&rt, async |tx| {
                    let v = tx.read(Addr(0)).await?;
                    tx.write(Addr(0), v + 1).await
                })
                .await;
            }
        });
    }
    assert_eq!(ex.run().status, RunStatus::Completed);
    assert_eq!(norec_view.heap().load(Addr(0)), 200);
    assert_eq!(orec_view.heap().load(Addr(0)), 200);
}

#[test]
fn deterministic_sim_runs_are_bit_identical() {
    let run = |seed: u64| -> (u64, u64) {
        let system = sys(TmAlgorithm::OrecEagerRedo, 8);
        let view = system.create_view(64, QuotaMode::Fixed(8));
        let mut ex = SimExecutor::new(SimConfig {
            seed,
            ..Default::default()
        });
        for t in 0..8u64 {
            let view = Arc::clone(&view);
            ex.spawn(move |rt| async move {
                let mut rng = votm_utils::XorShift64::new(t);
                for _ in 0..30 {
                    view.transact(&rt, async |tx| {
                        let a = Addr(rng.next_below(16) as u32);
                        let v = tx.read(a).await?;
                        tx.write(a, v + 1).await
                    })
                    .await;
                }
            });
        }
        let out = ex.run();
        (out.vtime, view.stats().tm.aborts)
    };
    assert_eq!(run(42), run(42), "same seed, same makespan and aborts");
}
