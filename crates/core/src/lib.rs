//! View-Oriented Transactional Memory (VOTM) — the paper's primary
//! contribution.
//!
//! Shared memory is partitioned by the programmer into non-overlapping
//! **views**, each of which is an *independent TM system* (its own heap,
//! its own global clock / orec table, its own statistics) guarded by its own
//! Restricted Admission Control gate. Objects that are accessed together in
//! one transaction live in the same view; objects that never are belong in
//! different views, so that contention in one cannot throttle the other
//! (paper Observation 2).
//!
//! # API mapping (paper Table I → this crate)
//!
//! | Paper                      | Here                                          |
//! |----------------------------|-----------------------------------------------|
//! | `create_view(vid, sz, q)`  | [`Votm::create_view`] (returns an [`std::sync::Arc`]`<`[`View`]`>`) |
//! | `malloc_block(vid, sz)`    | [`View::alloc_block`] / [`TxHandle::alloc`]   |
//! | `free_block(vid, p)`       | [`View::free_block`] / [`TxHandle::free`]     |
//! | `brk_view(vid, sz)`        | [`View::brk_view`]                            |
//! | `destroy_view(vid)`        | [`Votm::destroy_view`]                        |
//! | `acquire_view` … `release_view`  | [`View::transact`] (closure, async)     |
//! | `acquire_Rview` … `release_view` | [`View::transact_ro`]                   |
//!
//! The C API brackets a region with `acquire_view`/`release_view` and, on a
//! failed commit, rolls back and re-executes the region via `setjmp`/
//! `longjmp`. Rust's safe equivalent of that control flow is a closure the
//! runtime can re-invoke: [`View::transact`] acquires admission, runs the
//! body, commits, and on conflict rolls back, **releases and reacquires
//! admission** (the paper's release step 1), then re-runs the body.
//!
//! Bodies are `async` because every shared access is a potential scheduling
//! point for the virtual-time simulator (see `votm-sim`); under real threads
//! those awaits resolve immediately.
//!
//! ```
//! use votm::{atomically, Votm};
//! use votm_rac::QuotaMode;
//! use votm_sim::{SimConfig, SimExecutor};
//! use votm_stm::Addr;
//!
//! let sys = Votm::builder().build();
//! let counter = sys.create_view(16, QuotaMode::Adaptive);
//! let view = counter.clone();
//!
//! let mut ex = SimExecutor::new(SimConfig::default());
//! for _ in 0..4 {
//!     let view = view.clone();
//!     ex.spawn(move |rt| async move {
//!         for _ in 0..10 {
//!             atomically(&view, &rt, async |tx| {
//!                 let v = tx.read(Addr(0)).await?;
//!                 tx.write(Addr(0), v + 1).await
//!             })
//!             .await;
//!         }
//!     });
//! }
//! ex.run();
//! assert_eq!(counter.heap().load(Addr(0)), 40);
//! ```
//!
//! # Blocking transactions
//!
//! [`TxHandle::retry`] and [`TxHandle::or_else`] give bodies Haskell-STM
//! blocking semantics: a body that finds the state unusable parks (keyed by
//! its read set) instead of spinning, and is woken by the first commit that
//! writes something it read. See `votm-ds`'s `BoundedBuffer` for the
//! canonical producer/consumer use.

#![warn(missing_docs)]

mod domain;
mod error;
mod handle;
mod system;
mod view;
mod wait;

pub use domain::{AdaptiveDomain, DomainStats, DomainTx, RepartitionPolicy};
pub use error::TxError;
pub use handle::{HeapExhausted, TxAbort, TxHandle};
pub use system::{Votm, VotmBuilder, VotmConfig};
pub use view::{View, ViewStats};

use votm_sim::Rt;

/// Runs `body` as one atomic transaction against `view` — the Haskell-STM
/// shaped convenience front door, equivalent to [`View::transact`]:
///
/// ```ignore
/// let v = atomically(&view, &rt, async |tx| tx.read(addr).await).await;
/// ```
pub async fn atomically<T, F>(view: &View, rt: &Rt, body: F) -> T
where
    F: for<'h> AsyncFnMut(&'h mut TxHandle<'_>) -> Result<T, TxError>,
{
    view.transact(rt, body).await
}

// Re-export the vocabulary types callers need so `votm` is self-sufficient.
pub use votm_obs::{AbortReason, EventKind, FlightRecorder, RecorderHandle, ThreadTrace};
pub use votm_rac::{CmPolicy, GateStats, QuotaMode};
pub use votm_stm::{Addr, ClockKind, ClockStats, StatsSnapshot, TmAlgorithm};
