//! The VOTM system object: view registry and global configuration.

use std::sync::Arc;

use votm_obs::FlightRecorder;
use votm_rac::{CmPolicy, ControllerConfig, QuotaMode};
use votm_stm::{ClockKind, TmAlgorithm};
use votm_utils::Mutex;

use crate::view::{view_arc_id, View};

/// Global configuration for a [`Votm`] system.
#[derive(Debug, Clone)]
pub struct VotmConfig {
    /// TM algorithm every view runs (the paper evaluates one algorithm per
    /// system build: VOTM-OrecEagerRedo and VOTM-NOrec).
    pub algorithm: TmAlgorithm,
    /// The maximum number of threads `N` — adaptive quotas start here and
    /// never exceed it.
    pub n_threads: u32,
    /// Tuning for adaptive RAC controllers.
    pub controller: ControllerConfig,
    /// Reserve factor for `brk_view`: each view's heap reserves
    /// `size × reserve_factor` words so it can grow. 1 disables growth.
    pub reserve_factor: usize,
    /// Starvation watchdog: `Some(K)` makes a transaction that aborts `K`
    /// times in a row request *exclusive* admission on its next attempt —
    /// the irrevocable Q = 1 lock-mode fallback, which cannot abort.
    ///
    /// Defaults to `None` (off): livelock under contention is a phenomenon
    /// the paper measures, and escalation would change the reported tables.
    pub escalate_after: Option<u32>,
    /// Flight recorder shared by every view created on this system. `None`
    /// (the default) makes all event recording a dead-handle no-op; latency
    /// histograms stay on either way.
    pub recorder: Option<Arc<FlightRecorder>>,
    /// Contention-management policy for every view: which of two
    /// conflicting transactions yields, and how. The default,
    /// [`CmPolicy::Backoff`], reproduces the historical backoff-and-retry
    /// behaviour exactly (and costs nothing on the hot path); the other
    /// policies trade a little bookkeeping for progress guarantees — see
    /// `votm_rac::cm`.
    pub contention: CmPolicy,
    /// Clock strategy for every view's TM version/sequence clock. The
    /// default, [`ClockKind::Global`], is the single fetch-add clock the
    /// paper's RSTM plug-ins use (bit-identical behaviour); the other
    /// kinds attack the global-clock bottleneck the paper names for
    /// memory-intensive NOrec workloads — see `votm_stm::clock`.
    pub clock: ClockKind,
}

impl Default for VotmConfig {
    fn default() -> Self {
        Self {
            algorithm: TmAlgorithm::NOrec,
            n_threads: 16,
            controller: ControllerConfig::default(),
            reserve_factor: 1,
            escalate_after: None,
            recorder: None,
            contention: CmPolicy::Backoff,
            clock: ClockKind::Global,
        }
    }
}

/// A VOTM system: a factory and registry of [`View`]s.
///
/// The paper's `vid`-based C API maps to the returned `Arc<View>` handles;
/// [`Votm::view`] recovers a handle from an id for code ported literally.
pub struct Votm {
    config: VotmConfig,
    views: Mutex<Vec<Option<Arc<View>>>>,
}

impl Votm {
    /// Creates an empty system from a raw config struct.
    #[deprecated(
        since = "0.9.0",
        note = "use the typed front door: `Votm::builder().algo(..).policy(..).clock(..).build()`"
    )]
    pub fn new(config: VotmConfig) -> Self {
        Self::from_config(config)
    }

    /// The builder front door: `Votm::builder().algo(..).policy(..)
    /// .clock(..).build()`. Every knob defaults to the paper's baseline
    /// ([`VotmConfig::default`]), so `Votm::builder().build()` is a valid
    /// minimal system.
    pub fn builder() -> VotmBuilder {
        VotmBuilder {
            config: VotmConfig::default(),
        }
    }

    fn from_config(config: VotmConfig) -> Self {
        Self {
            config,
            views: Mutex::new(Vec::new()),
        }
    }

    /// The system configuration.
    pub fn config(&self) -> &VotmConfig {
        &self.config
    }

    /// Creates a view of `size_words` words (`create_view`). `quota`
    /// corresponds to the paper's third argument: `Fixed(q)` pins the
    /// admission quota, `Adaptive` (the paper's "< 1" convention) lets RAC
    /// manage it, `Unrestricted` disables admission control for the
    /// multi-TM / plain-TM baselines.
    pub fn create_view(&self, size_words: usize, quota: QuotaMode) -> Arc<View> {
        self.create_view_with_algorithm(size_words, quota, self.config.algorithm)
    }

    /// Like [`Votm::create_view`] but overrides the TM algorithm for this
    /// one view. Because every view is an independent TM instance, views
    /// with different algorithms coexist freely — the per-view adaptive-TM
    /// direction the paper sketches as future work (§IV-C): a
    /// memory-intensive view can run OrecEagerRedo while a validation-light
    /// view runs NOrec.
    pub fn create_view_with_algorithm(
        &self,
        size_words: usize,
        quota: QuotaMode,
        algorithm: TmAlgorithm,
    ) -> Arc<View> {
        let mut views = self.views.lock();
        let id = views.len();
        let view = Arc::new(View::new(
            id,
            algorithm,
            size_words,
            size_words * self.config.reserve_factor.max(1),
            quota,
            self.config.n_threads,
            &self.config.controller,
            self.config.escalate_after,
            self.config.recorder.clone(),
            self.config.contention,
            self.config.clock,
        ));
        views.push(Some(Arc::clone(&view)));
        view
    }

    /// Creates an [`AdaptiveDomain`]: a self-partitioning group of views
    /// over one `size_words`-word shared heap. The domain starts as a
    /// single view and — once its controller task runs (spawn
    /// [`AdaptiveDomain::run_controller`]) — splits and merges itself
    /// online toward the conflict profile's suggested partitioning.
    ///
    /// Domains are independent of the [`Votm::create_view`] registry: they
    /// allocate their own view ids starting at 0, so give a domain its own
    /// [`crate::FlightRecorder`] rather than sharing one with registry
    /// views (the repartitioner folds the profile per view id).
    pub fn create_domain(
        &self,
        size_words: usize,
        quota: QuotaMode,
        policy: crate::RepartitionPolicy,
    ) -> Arc<crate::AdaptiveDomain> {
        crate::AdaptiveDomain::new(&self.config, size_words, quota, policy)
    }

    /// Looks up a live view by id.
    pub fn view(&self, id: usize) -> Option<Arc<View>> {
        self.views.lock().get(id).and_then(Clone::clone)
    }

    /// Destroys a view (`destroy_view`): removes it from the registry. The
    /// backing memory is reclaimed when the last `Arc<View>` drops, so
    /// in-flight transactions on other threads stay safe — Rust's answer to
    /// the C API's use-after-destroy hazard.
    pub fn destroy_view(&self, view: &Arc<View>) {
        let mut views = self.views.lock();
        let id = view_arc_id(view);
        if let Some(slot) = views.get_mut(id) {
            *slot = None;
        }
    }

    /// Ids of all live views, in creation order.
    pub fn live_view_ids(&self) -> Vec<usize> {
        self.views
            .lock()
            .iter()
            .filter_map(|v| v.as_ref().map(|v| v.id()))
            .collect()
    }
}

/// Builder for a [`Votm`] system — the single typed entry point.
///
/// ```
/// use votm::Votm;
/// use votm_rac::CmPolicy;
/// use votm_stm::{ClockKind, TmAlgorithm};
///
/// let sys = Votm::builder()
///     .algo(TmAlgorithm::OrecEagerRedo)
///     .policy(CmPolicy::Karma)
///     .clock(ClockKind::Global)
///     .threads(8)
///     .build();
/// assert_eq!(sys.config().n_threads, 8);
/// ```
#[derive(Debug, Clone)]
pub struct VotmBuilder {
    config: VotmConfig,
}

impl VotmBuilder {
    /// TM algorithm every view runs (overridable per view via
    /// [`Votm::create_view_with_algorithm`]).
    pub fn algo(mut self, algorithm: TmAlgorithm) -> Self {
        self.config.algorithm = algorithm;
        self
    }

    /// The maximum number of threads `N` — adaptive quotas start here.
    pub fn threads(mut self, n_threads: u32) -> Self {
        self.config.n_threads = n_threads;
        self
    }

    /// Contention-management policy for every view.
    pub fn policy(mut self, contention: CmPolicy) -> Self {
        self.config.contention = contention;
        self
    }

    /// Clock strategy for every view's TM version/sequence clock.
    pub fn clock(mut self, clock: ClockKind) -> Self {
        self.config.clock = clock;
        self
    }

    /// Tuning for adaptive RAC controllers.
    pub fn controller(mut self, controller: ControllerConfig) -> Self {
        self.config.controller = controller;
        self
    }

    /// Reserve factor for `brk_view` heap growth (1 disables growth).
    pub fn reserve_factor(mut self, reserve_factor: usize) -> Self {
        self.config.reserve_factor = reserve_factor;
        self
    }

    /// Starvation watchdog threshold `K`: `Some(K)` escalates a
    /// transaction to exclusive admission after `K` consecutive aborts.
    pub fn escalate_after(mut self, escalate_after: Option<u32>) -> Self {
        self.config.escalate_after = escalate_after;
        self
    }

    /// Flight recorder shared by every view created on this system.
    pub fn recorder(mut self, recorder: Arc<FlightRecorder>) -> Self {
        self.config.recorder = Some(recorder);
        self
    }

    /// Builds the system.
    pub fn build(self) -> Votm {
        Votm::from_config(self.config)
    }
}

impl std::fmt::Debug for Votm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Votm")
            .field("algorithm", &self.config.algorithm)
            .field("n_threads", &self.config.n_threads)
            .field("live_views", &self.live_view_ids().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_lookup_views() {
        let sys = Votm::builder().build();
        let a = sys.create_view(64, QuotaMode::Adaptive);
        let b = sys.create_view(64, QuotaMode::Fixed(4));
        assert_eq!(a.id(), 0);
        assert_eq!(b.id(), 1);
        assert_eq!(sys.view(0).unwrap().id(), 0);
        assert!(sys.view(7).is_none());
        assert_eq!(sys.live_view_ids(), vec![0, 1]);
    }

    #[test]
    fn destroy_removes_from_registry_but_keeps_arc_alive() {
        let sys = Votm::builder().build();
        let a = sys.create_view(64, QuotaMode::Adaptive);
        sys.destroy_view(&a);
        assert!(sys.view(0).is_none());
        assert_eq!(sys.live_view_ids(), Vec::<usize>::new());
        // The handle still works until dropped.
        assert!(a.alloc_block(4).is_some());
    }

    #[test]
    fn fixed_quota_is_applied() {
        let sys = Votm::builder().threads(16).build();
        let v = sys.create_view(16, QuotaMode::Fixed(4));
        assert_eq!(v.gate().quota(), 4);
        let w = sys.create_view(16, QuotaMode::Adaptive);
        assert_eq!(w.gate().quota(), 16, "adaptive starts at N");
    }

    #[test]
    fn per_view_algorithm_override() {
        let sys = Votm::builder().algo(TmAlgorithm::NOrec).build();
        let a = sys.create_view(16, QuotaMode::Adaptive);
        let b = sys.create_view_with_algorithm(16, QuotaMode::Adaptive, TmAlgorithm::OrecEagerRedo);
        assert!(format!("{a:?}").contains("NOrec"));
        assert!(format!("{b:?}").contains("OrecEagerRedo"));
    }

    #[test]
    fn reserve_factor_enables_brk() {
        let sys = Votm::builder().reserve_factor(4).build();
        let v = sys.create_view(16, QuotaMode::Adaptive);
        assert_eq!(v.brk_view(16), Some(32), "brk within 4x reserve");
    }
}
