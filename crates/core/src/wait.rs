//! Read-set-keyed wakeups for blocking transactions.
//!
//! [`WaitTable`] is the per-view registry of parked transactions. A body
//! that calls [`crate::TxHandle::retry`] has declared "nothing I read lets
//! me proceed"; re-running it before any of those words change is pure
//! waste (the `busy_retries` pathology). Instead the driver parks the task
//! on a [`WaitRecord`] keyed by the attempt's read-set Bloom summary (the
//! same 64-bucket hash the NOrec write-set filter uses, see
//! [`votm_stm::bloom_bucket`]), and every committing writer *publishes* its
//! write-set summary here: waiters whose keys intersect are woken, the rest
//! keep sleeping.
//!
//! # The lost-wakeup window
//!
//! The classic hazard: a writer commits *between* the reader's failed
//! attempt and the moment its wait record becomes visible — the wakeup the
//! reader needed has already happened, and it sleeps forever. The table
//! closes the window with a commit epoch:
//!
//! * every publication bumps `epoch` and stamps it into `bucket_epochs[b]`
//!   for each written bucket — **even when nobody is parked**;
//! * the driver snapshots `epoch` *before* the attempt's first read;
//! * parking re-checks, under the same mutex that publication holds, that
//!   no bucket in the key was stamped after that snapshot. If one was, the
//!   park is refused ([`ParkOutcome::SkippedStale`]) and the attempt
//!   re-runs — the "wakeup" is delivered by never sleeping.
//!
//! So any invalidating commit either (a) precedes the park's stale check
//! and is caught by the epoch stamp, or (b) follows it, finds the record
//! already in `records` under the mutex, and wakes it. There is no third
//! interleaving.
//!
//! # Timeouts
//!
//! Under the simulator a parked task also schedules itself a deadline
//! [`PARK_TIMEOUT`] cycles out. A park that expires resolves to
//! [`ParkOutcome::TimedOut`]; the driver records a `LostWakeup` event and
//! falls back to an ordinary re-run, so a genuinely lost wakeup (a bug, or
//! a workload where no writer ever comes) degrades to slow polling plus an
//! audit trail instead of a hang. Under real threads parks are purely
//! wake-driven.

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::task::{Context, Poll, Waker};

use votm_sim::Rt;
use votm_utils::Mutex;

/// Cycles a parked transaction sleeps before giving up on its wakeup and
/// re-running anyway (simulator mode). Large relative to transaction
/// lengths (~10²–10³ cycles) so real wakeups always win, small enough that
/// a lost wakeup surfaces within one run.
pub(crate) const PARK_TIMEOUT: u64 = 1 << 20;

/// One parked transaction.
struct WaitRecord {
    /// Identity of the park (unique per table), so a future can find its
    /// own record again.
    key: u64,
    /// Read-set Bloom summary: wake when a commit's write summary
    /// intersects it.
    summary: u64,
    waker: Waker,
}

struct WaitInner {
    /// Monotonic publication counter.
    epoch: u64,
    /// `bucket_epochs[b]`: the epoch of the most recent published commit
    /// whose write summary had bit `b` set.
    bucket_epochs: [u64; 64],
    records: Vec<WaitRecord>,
    next_key: u64,
}

/// Per-view wakeup table mapping write-set Bloom buckets to parked waiters.
pub(crate) struct WaitTable {
    /// Lock-free mirror of `WaitInner::epoch` for the driver's pre-begin
    /// snapshot (taken on every attempt, so it must not contend).
    epoch: AtomicU64,
    inner: Mutex<WaitInner>,
}

impl WaitTable {
    pub(crate) fn new() -> Self {
        Self {
            epoch: AtomicU64::new(0),
            inner: Mutex::new(WaitInner {
                epoch: 0,
                bucket_epochs: [0; 64],
                records: Vec::new(),
                next_key: 0,
            }),
        }
    }

    /// The current publication epoch. Snapshot this *before* a transaction
    /// attempt reads anything; pass the snapshot to [`WaitTable::park`].
    #[inline]
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Commit-side half: record that a transaction just committed writes
    /// with this Bloom `summary`, and wake every parked waiter whose key
    /// intersects it. Always bumps the epoch stamps (even with no waiters)
    /// — that is what closes the lost-wakeup window for parks in flight.
    /// Returns the number of waiters woken.
    pub(crate) fn publish(&self, summary: u64) -> usize {
        if summary == 0 {
            return 0;
        }
        let woken = {
            let mut inner = self.inner.lock();
            inner.epoch += 1;
            let epoch = inner.epoch;
            self.epoch.store(epoch, Ordering::Release);
            let mut bits = summary;
            while bits != 0 {
                inner.bucket_epochs[bits.trailing_zeros() as usize] = epoch;
                bits &= bits - 1;
            }
            let mut woken = Vec::new();
            let mut i = 0;
            while i < inner.records.len() {
                if inner.records[i].summary & summary != 0 {
                    woken.push(inner.records.swap_remove(i).waker);
                } else {
                    i += 1;
                }
            }
            woken
        };
        // Wake outside the lock: a woken task may immediately try to park
        // again from another thread.
        let n = woken.len();
        for waker in woken {
            waker.wake();
        }
        n
    }

    /// Parks the current task until a commit intersecting `summary` is
    /// published, the deadline passes, or the stale check fails.
    /// `begin_epoch` must be the [`WaitTable::epoch`] snapshot taken before
    /// the retry group's first attempt began reading.
    pub(crate) fn park<'a>(
        &'a self,
        rt: &'a Rt,
        summary: u64,
        begin_epoch: u64,
        timeout: u64,
    ) -> ParkFut<'a> {
        ParkFut {
            table: self,
            rt,
            summary,
            begin_epoch,
            timeout,
            state: ParkState::Init,
        }
    }

    /// Number of currently-parked transactions (test/diagnostic hook).
    #[cfg(test)]
    pub(crate) fn parked_count(&self) -> usize {
        self.inner.lock().records.len()
    }
}

/// How a park ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ParkOutcome {
    /// A committing writer's summary intersected ours.
    Woken,
    /// The deadline passed without an intersecting commit.
    TimedOut,
    /// Never slept: a commit intersecting the key landed after the
    /// attempt's begin snapshot, so the wakeup already happened.
    SkippedStale,
}

enum ParkState {
    Init,
    Parked { key: u64, deadline: u64 },
}

/// Future returned by [`WaitTable::park`].
pub(crate) struct ParkFut<'a> {
    table: &'a WaitTable,
    rt: &'a Rt,
    summary: u64,
    begin_epoch: u64,
    timeout: u64,
    state: ParkState,
}

impl ParkFut<'_> {
    /// Enqueues a simulator re-activation of this task `cost` cycles out.
    /// Polling a fresh `charge` once registers the timer with the
    /// executor's queue; the `Step` value itself need not be kept alive —
    /// the queue entry survives it, and an earlier table wakeup supersedes
    /// it (the executor orphans the stale entry).
    fn arm_deadline(&self, cx: &mut Context<'_>, cost: u64) {
        if self.rt.is_virtual() {
            let mut step = self.rt.charge(cost);
            let _ = Pin::new(&mut step).poll(cx);
        }
    }
}

impl Future for ParkFut<'_> {
    type Output = ParkOutcome;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<ParkOutcome> {
        let this = self.get_mut();
        match this.state {
            ParkState::Init => {
                {
                    let mut inner = this.table.inner.lock();
                    // Stale check under the publication mutex (see module
                    // docs): any key bucket stamped after our begin
                    // snapshot means the wakeup already happened.
                    let mut bits = this.summary;
                    while bits != 0 {
                        let b = bits.trailing_zeros() as usize;
                        if inner.bucket_epochs[b] > this.begin_epoch {
                            return Poll::Ready(ParkOutcome::SkippedStale);
                        }
                        bits &= bits - 1;
                    }
                    let key = inner.next_key;
                    inner.next_key += 1;
                    inner.records.push(WaitRecord {
                        key,
                        summary: this.summary,
                        waker: cx.waker().clone(),
                    });
                    this.state = ParkState::Parked {
                        key,
                        deadline: this.rt.now().saturating_add(this.timeout),
                    };
                }
                this.arm_deadline(cx, this.timeout);
                Poll::Pending
            }
            ParkState::Parked { key, deadline } => {
                let mut inner = this.table.inner.lock();
                match inner.records.iter().position(|r| r.key == key) {
                    // Publication removed our record: we were woken.
                    None => Poll::Ready(ParkOutcome::Woken),
                    Some(i) => {
                        if this.rt.is_virtual() && this.rt.now() >= deadline {
                            inner.records.swap_remove(i);
                            Poll::Ready(ParkOutcome::TimedOut)
                        } else {
                            // Spurious poll: refresh the waker and (in sim
                            // mode, defensively) re-arm the deadline.
                            inner.records[i].waker = cx.waker().clone();
                            drop(inner);
                            this.arm_deadline(cx, deadline.saturating_sub(this.rt.now()));
                            Poll::Pending
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_stamps_buckets_and_bumps_epoch() {
        let t = WaitTable::new();
        assert_eq!(t.epoch(), 0);
        assert_eq!(t.publish(0), 0, "empty summary publishes nothing");
        assert_eq!(t.epoch(), 0);
        t.publish(0b101);
        assert_eq!(t.epoch(), 1);
        let inner = t.inner.lock();
        assert_eq!(inner.bucket_epochs[0], 1);
        assert_eq!(inner.bucket_epochs[1], 0);
        assert_eq!(inner.bucket_epochs[2], 1);
    }

    #[test]
    fn stale_park_is_refused() {
        use std::task::{RawWaker, RawWakerVTable};
        fn noop_waker() -> Waker {
            const VTABLE: RawWakerVTable = RawWakerVTable::new(
                |_| RawWaker::new(std::ptr::null(), &VTABLE),
                |_| {},
                |_| {},
                |_| {},
            );
            unsafe { Waker::from_raw(RawWaker::new(std::ptr::null(), &VTABLE)) }
        }
        let t = WaitTable::new();
        let snapshot = t.epoch();
        t.publish(0b10); // a commit lands after the snapshot
        let rt = Rt::Real(votm_sim::RealHandle::standalone(0));
        let mut fut = t.park(&rt, 0b10, snapshot, 1024);
        let waker = noop_waker();
        let mut cx = Context::from_waker(&waker);
        match Pin::new(&mut fut).poll(&mut cx) {
            Poll::Ready(ParkOutcome::SkippedStale) => {}
            other => panic!("expected SkippedStale, got {other:?}"),
        }
        assert_eq!(t.parked_count(), 0);
        // A disjoint key may still park.
        let mut fut = t.park(&rt, 0b100, snapshot, 1024);
        assert!(matches!(Pin::new(&mut fut).poll(&mut cx), Poll::Pending));
        assert_eq!(t.parked_count(), 1);
        // An intersecting publication drains it.
        assert_eq!(t.publish(0b100), 1);
        assert_eq!(t.parked_count(), 0);
        assert!(matches!(
            Pin::new(&mut fut).poll(&mut cx),
            Poll::Ready(ParkOutcome::Woken)
        ));
    }
}
