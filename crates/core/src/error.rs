//! The unified transaction error type.
//!
//! Historically the handle's operations returned two unrelated error
//! structs: [`TxAbort`] ("roll back and re-run") and [`HeapExhausted`]
//! ("allocation failed"). Blocking transactions add a third outcome —
//! *retry*, "park me until my read set changes" — and composing the three
//! through `?` needs one error enum. [`TxError`] is that enum; the old
//! structs remain as conversion targets so existing call sites keep
//! compiling.

use votm_obs::AbortReason;

use crate::handle::{HeapExhausted, TxAbort};

/// Why a transaction body stopped short of committing.
///
/// Every [`crate::TxHandle`] operation returns this, so a body can
/// propagate any failure with a single `?`. The driver interprets the
/// variants differently:
///
/// * [`TxError::Abort`] / [`TxError::HeapExhausted`] — roll back and
///   immediately re-run the body (the historical behaviour).
/// * [`TxError::Retry`] — roll back and **park** the task on a wait record
///   keyed by the attempt's read set; the body re-runs only after another
///   transaction commits a write intersecting that read set (or the park
///   times out). Produced by [`crate::TxHandle::retry`].
///
/// The enum is `non_exhaustive`: future drivers may add outcomes without a
/// breaking release, so always keep a `_ =>` arm when matching.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxError {
    /// The attempt must be rolled back and retried, for the given
    /// structured reason (conflict, contention-manager kill, injected
    /// fault, or an explicit user abort).
    Abort(AbortReason),
    /// A [`crate::TxHandle::alloc`] could not be satisfied even after one
    /// `brk_view` growth attempt.
    HeapExhausted {
        /// The allocation size that could not be satisfied.
        requested_words: u32,
    },
    /// The body called [`crate::TxHandle::retry`]: block until the world
    /// this attempt read changes.
    Retry,
}

impl From<TxAbort> for TxError {
    fn from(_: TxAbort) -> Self {
        TxError::Abort(AbortReason::Explicit)
    }
}

impl From<HeapExhausted> for TxError {
    fn from(e: HeapExhausted) -> Self {
        TxError::HeapExhausted {
            requested_words: e.requested_words,
        }
    }
}

/// Lossy downgrade for legacy helpers typed `Result<_, TxAbort>`: any
/// unified error propagated into one collapses to a plain abort. Note this
/// turns [`TxError::Retry`] into an ordinary spinning abort — blocking
/// helpers should be typed with [`TxError`] so the park semantics survive
/// `?`.
impl From<TxError> for TxAbort {
    fn from(_: TxError) -> Self {
        TxAbort
    }
}

impl std::fmt::Display for TxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxError::Abort(reason) => write!(f, "transaction aborted ({})", reason.name()),
            TxError::HeapExhausted { requested_words } => write!(
                f,
                "view heap exhausted allocating {requested_words} words (after brk_view growth attempt)"
            ),
            TxError::Retry => write!(f, "transaction blocked (retry): read set unchanged"),
        }
    }
}

impl std::error::Error for TxError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(
            TxError::from(TxAbort),
            TxError::Abort(AbortReason::Explicit)
        );
        assert_eq!(
            TxError::from(HeapExhausted { requested_words: 8 }),
            TxError::HeapExhausted { requested_words: 8 }
        );
        assert_eq!(TxAbort::from(TxError::Retry), TxAbort);
    }

    #[test]
    fn question_mark_propagation_compiles_both_ways() {
        fn legacy() -> Result<(), TxAbort> {
            Err(HeapExhausted { requested_words: 1 })?
        }
        fn unified() -> Result<(), TxError> {
            legacy()?;
            Ok(())
        }
        assert_eq!(unified(), Err(TxError::Abort(AbortReason::Explicit)));
    }
}
