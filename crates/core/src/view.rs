//! A view: one partition of shared memory = one TM instance + one RAC gate.

use std::sync::Arc;

use votm_obs::{FlightRecorder, RecorderHandle, ViewHistSnapshot, ViewHists};
use votm_rac::{
    AdmissionGate, CmInstance, CmPolicy, ControllerConfig, GateStats, QuotaMode, RacController,
};
use votm_sim::Rt;
use votm_stm::{Addr, ClockKind, ClockStats, StatsSnapshot, TmAlgorithm, TmInstance};

use crate::error::TxError;
use crate::handle::{drive_transaction, TxHandle};
use crate::wait::WaitTable;

/// One view of shared memory.
///
/// Construct through [`crate::Votm::create_view`]; cheaply shared between
/// logical threads as `Arc<View>`.
pub struct View {
    id: usize,
    tm: TmInstance,
    gate: AdmissionGate,
    controller: Option<RacController>,
    quota_mode: QuotaMode,
    escalate_after: Option<u32>,
    /// Always-on latency histograms (commit, abort-to-retry, gate wait).
    hists: ViewHists,
    /// Optional flight recorder shared with the owning [`crate::Votm`].
    recorder: Option<Arc<FlightRecorder>>,
    /// Contention-management runtime (policy + shared doom/priority slots).
    cm: CmInstance,
    /// Parked blocking transactions (`retry`), keyed by read-set summary.
    waits: WaitTable,
}

impl View {
    #[allow(clippy::too_many_arguments)] // crate-internal constructor, one call site
    pub(crate) fn new(
        id: usize,
        algo: TmAlgorithm,
        size_words: usize,
        capacity_words: usize,
        quota_mode: QuotaMode,
        n_threads: u32,
        controller_config: &ControllerConfig,
        escalate_after: Option<u32>,
        recorder: Option<Arc<FlightRecorder>>,
        contention: CmPolicy,
        clock: ClockKind,
    ) -> Self {
        Self::assemble(
            id,
            TmInstance::with_reserve_clock(algo, size_words, capacity_words.max(size_words), clock),
            quota_mode,
            n_threads,
            controller_config,
            escalate_after,
            recorder,
            contention,
        )
    }

    /// A view over an *existing* shared heap: its own metadata domain
    /// (clock, orecs, seqlock), admission gate, contention manager and wait
    /// table — but the word array belongs to the caller. This is how the
    /// repartitioner ([`crate::AdaptiveDomain`]) materialises a split: the
    /// data stays put, only the metadata domain and the route change.
    #[allow(clippy::too_many_arguments)] // crate-internal constructor
    pub(crate) fn new_over(
        id: usize,
        algo: TmAlgorithm,
        heap: Arc<votm_stm::WordHeap>,
        quota_mode: QuotaMode,
        n_threads: u32,
        controller_config: &ControllerConfig,
        escalate_after: Option<u32>,
        recorder: Option<Arc<FlightRecorder>>,
        contention: CmPolicy,
        clock: ClockKind,
    ) -> Self {
        Self::assemble(
            id,
            TmInstance::over_heap(algo, heap, clock),
            quota_mode,
            n_threads,
            controller_config,
            escalate_after,
            recorder,
            contention,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        id: usize,
        tm: TmInstance,
        quota_mode: QuotaMode,
        n_threads: u32,
        controller_config: &ControllerConfig,
        escalate_after: Option<u32>,
        recorder: Option<Arc<FlightRecorder>>,
        contention: CmPolicy,
    ) -> Self {
        let (initial_quota, controller) = match quota_mode {
            QuotaMode::Fixed(q) => (q, None),
            QuotaMode::Adaptive => (
                n_threads,
                Some(RacController::new(controller_config.clone())),
            ),
            // Admission control disabled; quota N means the gate never
            // blocks (there are only N threads), and no controller runs.
            QuotaMode::Unrestricted => (n_threads, None),
        };
        Self {
            id,
            tm,
            gate: AdmissionGate::new(initial_quota, n_threads),
            controller,
            quota_mode,
            escalate_after,
            hists: ViewHists::new(),
            recorder,
            // The windowed-greedy draw seed derives from the view id only,
            // so identically-seeded runs replay identically.
            cm: CmInstance::new(contention, n_threads, 0x9e37_79b9_7f4a_7c15 ^ id as u64),
            waits: WaitTable::new(),
        }
    }

    /// The id assigned by [`crate::Votm`] (the paper's `vid`).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The view's heap, for allocation-free inspection and test assertions.
    pub fn heap(&self) -> &votm_stm::WordHeap {
        self.tm.heap()
    }

    /// The TM instance backing this view.
    pub(crate) fn tm(&self) -> &TmInstance {
        &self.tm
    }

    /// The admission gate (exposed for harness reporting).
    pub fn gate(&self) -> &AdmissionGate {
        &self.gate
    }

    pub(crate) fn controller(&self) -> Option<&RacController> {
        self.controller.as_ref()
    }

    /// The view's contention-management runtime.
    pub(crate) fn cm(&self) -> &CmInstance {
        &self.cm
    }

    /// The view's wakeup table for parked blocking transactions.
    pub(crate) fn waits(&self) -> &WaitTable {
        &self.waits
    }

    /// Which contention-management policy this view runs.
    pub fn cm_policy(&self) -> CmPolicy {
        self.cm.policy()
    }

    /// Which clock strategy this view's TM instance runs.
    pub fn clock_kind(&self) -> ClockKind {
        self.tm.clock_kind()
    }

    /// The view's latency histograms (commit, abort-to-retry, gate wait).
    /// Always on; recording is a relaxed `fetch_add`.
    pub fn hists(&self) -> &ViewHists {
        &self.hists
    }

    /// The flight recorder this view's transactions trace into, if one was
    /// configured via [`crate::VotmConfig::recorder`].
    pub fn recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.recorder.as_ref()
    }

    /// A recorder handle bound to `tid`'s ring — the dead no-op handle when
    /// no recorder is configured.
    pub(crate) fn recorder_handle(&self, tid: usize) -> RecorderHandle {
        match &self.recorder {
            Some(rec) => rec.handle(tid),
            None => RecorderHandle::dead(),
        }
    }

    /// True when this view bypasses admission control entirely (the paper's
    /// "multi-TM"/"TM" baselines).
    pub fn is_unrestricted(&self) -> bool {
        matches!(self.quota_mode, QuotaMode::Unrestricted)
    }

    /// The starvation watchdog's max-retry threshold `K`, if enabled: after
    /// `K` consecutive aborts a transaction escalates to exclusive
    /// admission. See [`crate::VotmConfig::escalate_after`].
    pub fn escalate_after(&self) -> Option<u32> {
        self.escalate_after
    }

    /// Allocates a block of `size_words` words from the view
    /// (`malloc_block`). Non-transactional: publish the address inside a
    /// transaction to make it visible safely.
    pub fn alloc_block(&self, size_words: u32) -> Option<Addr> {
        self.tm.heap().alloc_block(size_words)
    }

    /// Frees a block previously returned by [`View::alloc_block`]
    /// (`free_block`). Non-transactional; use [`TxHandle::free`] inside
    /// transactions so the free is rolled back if the transaction aborts.
    pub fn free_block(&self, addr: Addr) {
        self.tm.heap().free_block(addr)
    }

    /// Expands the view's usable memory by `size_words` (`brk_view`).
    /// Returns the new usable size, or `None` if the reserved capacity is
    /// exhausted.
    pub fn brk_view(&self, size_words: usize) -> Option<usize> {
        self.tm.heap().brk(size_words)
    }

    /// Runs `body` as one atomic transaction against this view —
    /// `acquire_view`; *body*; `release_view` with automatic retry.
    ///
    /// The body may be re-executed any number of times; it must be free of
    /// side effects other than through the [`TxHandle`]. Returns the body's
    /// value from the attempt that committed. A body that returns
    /// [`TxError::Retry`] (via [`TxHandle::retry`]) *blocks*: the task
    /// parks until another transaction commits a write intersecting the
    /// body's read set, then re-runs.
    pub async fn transact<T, F>(&self, rt: &Rt, body: F) -> T
    where
        F: for<'h> AsyncFnMut(&'h mut TxHandle<'_>) -> Result<T, TxError>,
    {
        drive_transaction(self, rt, false, body).await
    }

    /// Read-only variant (`acquire_Rview`): writes through the handle panic.
    /// Read-only transactions commit without touching the global clock in
    /// both algorithms.
    pub async fn transact_ro<T, F>(&self, rt: &Rt, body: F) -> T
    where
        F: for<'h> AsyncFnMut(&'h mut TxHandle<'_>) -> Result<T, TxError>,
    {
        drive_transaction(self, rt, true, body).await
    }

    /// Statistics snapshot in the shape of the paper's table rows.
    ///
    /// For adaptive views `quota` is the *settled* quota (the one the
    /// controller spent most windows at), not the instantaneous value — the
    /// latter can be a transient upward probe at the moment of sampling.
    pub fn stats(&self) -> ViewStats {
        let quota = self
            .controller
            .as_ref()
            .and_then(|c| c.dominant_quota())
            .unwrap_or_else(|| self.gate.quota());
        ViewStats {
            view_id: self.id,
            quota,
            tm: self.tm.stats().snapshot(),
            gate: self.gate.gate_stats(),
            hists: self.hists.snapshot(),
            clock: self.tm.clock_stats(),
        }
    }
}

impl std::fmt::Debug for View {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("View")
            .field("id", &self.id)
            .field("algo", &self.tm.algorithm())
            .field("quota", &self.gate.quota())
            .field("quota_mode", &self.quota_mode)
            .finish()
    }
}

/// Per-view statistics in the shape the paper's tables report.
#[derive(Debug, Clone, Copy)]
pub struct ViewStats {
    /// Which view.
    pub view_id: usize,
    /// The quota at snapshot time (the settled `Q` for adaptive runs).
    pub quota: u32,
    /// Commit/abort/cycle counters.
    pub tm: StatsSnapshot,
    /// Admission-gate fast/slow path counters (all zero for unrestricted
    /// views, whose transactions never consult the gate).
    pub gate: GateStats,
    /// Latency histograms: commit latency, abort-to-retry latency and gate
    /// wait, in cycles. The commit histogram's total count always equals
    /// `tm.commits`.
    pub hists: ViewHistSnapshot,
    /// Clock-source counters: bumps taken, bumps elided, banked epochs
    /// still pending a flush. All zero under [`ClockKind::Global`]'s
    /// always-bump strategy except `bumps` itself.
    pub clock: ClockStats,
}

impl ViewStats {
    /// The paper's δ(Q) for this view (Eq. 5); `None` at Q ≤ 1 ("N/A").
    pub fn delta(&self) -> Option<f64> {
        self.tm.delta(self.quota)
    }
}

/// Helper used by `Votm::destroy_view`.
pub(crate) fn view_arc_id(v: &Arc<View>) -> usize {
    v.id
}
