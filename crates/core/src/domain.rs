//! Online automatic view partitioning: an adaptive domain of views over
//! one shared heap, plus the repartitioning controller that splits and
//! merges them at runtime.
//!
//! The paper's Observation 2 says objects never accessed together belong
//! in separate views — but its API makes the *programmer* decide the
//! partitioning up front. An [`AdaptiveDomain`] removes that requirement:
//! it starts as ONE view over the whole heap and converges toward the
//! hand-partitioned layout by watching the conflict profile
//! ([`votm_obs::ConflictProfile`]) and executing live **splits** (and the
//! inverse **merges**) behind the admission gate's exclusive-drain
//! barrier.
//!
//! # Architecture
//!
//! * The heap is a single shared [`WordHeap`]; each *slot* of the domain
//!   holds a [`View`] built over it ([`votm_stm::TmInstance::over_heap`]):
//!   its own clock/orec/seqlock metadata domain, admission gate,
//!   contention manager and wait table. Data never moves — only metadata
//!   ownership does.
//! * A [`votm_stm::RouteTable`] maps each of the 64 locality-preserving
//!   address buckets (the profiler's fold, so a suggested bi-partition
//!   translates 1:1 into a remap) to its owning slot.
//! * Transactions enter through [`AdaptiveDomain::transact`] with a *hint
//!   address*; the domain dispatches to the hint's current owner view and
//!   checks every access against the route.
//!
//! # The repartition protocol (drain safety)
//!
//! A remap involving view V runs only while V is quiesced through
//! [`votm_rac::AdmissionGate::acquire_exclusive`] — the same barrier the
//! starvation watchdog's escalation uses. Because a view is drained
//! before any of its buckets move, a transaction admitted to V observes a
//! *stable* route for every bucket V owns, for its whole lifetime. The
//! full split choreography:
//!
//! 1. `clock_flush()` — settle banked epoch-elided clock bumps;
//! 2. `acquire_exclusive` — block new admissions, wait out in-flight
//!    transactions;
//! 3. build the new [`View`] over the shared heap (fresh metadata);
//! 4. [`votm_stm::RouteTable::remap`] the moving buckets to the new slot;
//! 5. record a [`EventKind::Repartition`] trace event;
//! 6. drop the drain guard, then `publish(u64::MAX)` on the wait table —
//!    every parked waiter wakes, re-runs, and **re-homes** through the
//!    route check to whichever view now owns its data; the publish also
//!    stamps every bucket epoch, so a park racing the drain observes
//!    `SkippedStale` instead of sleeping through the move (no lost
//!    wakeups).
//!
//! A merge drains *both* views in ascending slot order, remaps the
//! source's buckets onto the destination, and *retires* the source's gate:
//! a retired gate still admits (a racer holding a stale route must enter,
//! discover staleness and leave through the re-route path rather than
//! hang) but refuses quota changes, so no controller decision can
//! resurrect it.
//!
//! # Stale routes and cross-view transactions
//!
//! [`DomainTx`] checks the route per access. A mismatch means one of:
//!
//! * **stale route** — the hint's bucket moved between dispatch and
//!   admission. The attempt exits through an innocuous (empty read-only)
//!   commit and re-dispatches.
//! * **straddle** — the hint still routes here but the body reached into
//!   another view's buckets. The attempt rolls back (if it buffered
//!   writes, via an ordinary abort first — buffered writes must never
//!   leak through the exit commit) and re-runs in *union mode*: exclusive
//!   drain over every live view, direct (irrevocable) heap access. Each
//!   straddle bumps the cross-view pressure pair; sustained pressure is
//!   the controller's merge signal — exactly the "cross-view commit cost
//!   exceeds saved conflicts" criterion.
//!
//! # Hysteresis
//!
//! The controller ([`AdaptiveDomain::run_controller`]) wakes every
//! [`RepartitionPolicy::interval`] virtual cycles and applies at most one
//! repartition per wake, gated by a cool-down, a minimum wasted-work
//! share over the last interval, a minimum attributed-abort count (noise
//! floor) and a minimum profile separability — so a marginal workload
//! does not thrash split/merge/split.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use votm_obs::{AbortReason, ConflictProfile, EventKind, PROFILE_BUCKETS};
use votm_rac::{GateGuard, QuotaMode};
use votm_sim::Rt;
use votm_stm::{bloom_bucket, cost, Addr, RouteTable, StatsSnapshot, WordHeap};
use votm_utils::Mutex;

use crate::error::TxError;
use crate::handle::TxHandle;
use crate::system::VotmConfig;
use crate::view::View;

/// Virtual cycles charged for a stale-route re-dispatch (route lookup +
/// re-entry bookkeeping) — same order as a transaction begin.
const REROUTE_COST: u64 = cost::BEGIN;

/// Hysteresis policy for the repartitioning controller.
#[derive(Debug, Clone)]
pub struct RepartitionPolicy {
    /// Virtual cycles between controller evaluations.
    pub interval: u64,
    /// Minimum virtual cycles between two repartitions (split or merge).
    pub cooldown: u64,
    /// Minimum profile separability (`1 − cut/(cut+internal)`) for a
    /// split; below it, splitting would mostly convert internal conflicts
    /// into cross-view straddles.
    pub min_separability: f64,
    /// Minimum wasted-work share (aborted cycles / total cycles) over the
    /// last interval before a view is worth splitting at all.
    pub min_waste_share: f64,
    /// Minimum attributed aborts in the profile window (noise floor).
    pub min_aborts: u64,
    /// Straddling transactions against a view pair per interval above
    /// which the pair merges back (the cross-view cost signal).
    pub merge_cross_threshold: u64,
    /// Maximum simultaneous live views (slot cap).
    pub max_views: usize,
}

impl Default for RepartitionPolicy {
    fn default() -> Self {
        Self {
            interval: 1 << 17,
            cooldown: 1 << 18,
            min_separability: 0.7,
            min_waste_share: 0.05,
            min_aborts: 16,
            merge_cross_threshold: 8,
            max_views: 8,
        }
    }
}

/// Counters the controller and dispatch paths maintain; exported into the
/// bench gate as `repartitions` / `split_drain_cycles`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DomainStats {
    /// Total repartitions executed (splits + merges).
    pub repartitions: u64,
    /// Splits executed.
    pub splits: u64,
    /// Merges executed.
    pub merges: u64,
    /// Virtual cycles spent inside split/merge drain barriers.
    pub split_drain_cycles: u64,
    /// Transactions that fell back to union mode (cross-view access).
    pub straddles: u64,
    /// Stale-route re-dispatches.
    pub reroutes: u64,
    /// Live (non-retired) views right now.
    pub live_views: usize,
    /// Route-table remap epoch.
    pub route_epoch: u64,
}

/// A self-partitioning group of views over one shared heap.
///
/// Create with [`crate::Votm::create_domain`] (or [`AdaptiveDomain::new`]),
/// run transactions through [`AdaptiveDomain::transact`], and spawn
/// [`AdaptiveDomain::run_controller`] as a task to enable online
/// split/merge. Without the controller task the domain behaves exactly
/// like its initial single view (plus one atomic route lookup per access).
pub struct AdaptiveDomain {
    heap: Arc<WordHeap>,
    route: RouteTable,
    /// Slot-indexed views. A merged-away slot keeps its (retired) view so
    /// stale racers drain through it; the slot is reused by later splits.
    views: Mutex<Vec<Arc<View>>>,
    /// Retired slots available for reuse, ascending.
    free_slots: Mutex<Vec<u32>>,
    policy: RepartitionPolicy,
    config: VotmConfig,
    quota: QuotaMode,
    /// Monotonic view-id allocator; every incarnation (including a reused
    /// slot) gets a fresh id so per-view trace folding never mixes eras.
    next_view_id: AtomicUsize,
    /// Flat `max_views²` straddle-pressure matrix, `[from · mv + to]`.
    cross: Vec<AtomicU64>,
    /// Per-slot stats snapshot at the last controller evaluation, for
    /// interval-delta waste shares.
    prev_stats: Mutex<Vec<StatsSnapshot>>,
    last_repartition: AtomicU64,
    repartitions: AtomicU64,
    splits: AtomicU64,
    merges: AtomicU64,
    split_drain_cycles: AtomicU64,
    straddles: AtomicU64,
    reroutes: AtomicU64,
}

/// How an attempt left the view it was dispatched to.
#[derive(Clone, Copy)]
enum Exit {
    /// The hint's bucket moved away: re-dispatch by the new route.
    Reroute,
    /// The body reached into buckets owned by slot `.0`: fall back to the
    /// union-drained cross-view path.
    Straddle(u32),
}

enum Routed<T> {
    Done(T),
    Out(Exit),
}

impl AdaptiveDomain {
    /// A domain of `size_words` words starting as one view. `config`
    /// supplies the algorithm, thread count, clock, CM policy and
    /// recorder; the recorder is what the split decision profiles, so a
    /// domain without one never splits (merges, driven by straddle
    /// pressure, still work).
    pub fn new(
        config: &VotmConfig,
        size_words: usize,
        quota: QuotaMode,
        policy: RepartitionPolicy,
    ) -> Arc<Self> {
        assert!(
            !matches!(quota, QuotaMode::Unrestricted),
            "an AdaptiveDomain requires admission control: repartition \
             safety rests on the exclusive-drain barrier, and an \
             unrestricted view's transactions never consult the gate"
        );
        let capacity = size_words * config.reserve_factor.max(1);
        let heap = Arc::new(WordHeap::with_reserve(size_words, capacity));
        let route = RouteTable::new(heap.size_words(), 0);
        let mv = policy.max_views.max(1);
        let domain = Self {
            route,
            views: Mutex::new(Vec::new()),
            free_slots: Mutex::new(Vec::new()),
            policy,
            config: config.clone(),
            quota,
            next_view_id: AtomicUsize::new(0),
            cross: (0..mv * mv).map(|_| AtomicU64::new(0)).collect(),
            prev_stats: Mutex::new(Vec::new()),
            last_repartition: AtomicU64::new(0),
            repartitions: AtomicU64::new(0),
            splits: AtomicU64::new(0),
            merges: AtomicU64::new(0),
            split_drain_cycles: AtomicU64::new(0),
            straddles: AtomicU64::new(0),
            reroutes: AtomicU64::new(0),
            heap,
        };
        let first = domain.build_view();
        domain.views.lock().push(first);
        domain.prev_stats.lock().push(StatsSnapshot::default());
        Arc::new(domain)
    }

    /// A fresh view over the shared heap with the next monotonic id.
    fn build_view(&self) -> Arc<View> {
        let id = self.next_view_id.fetch_add(1, Ordering::Relaxed);
        Arc::new(View::new_over(
            id,
            self.config.algorithm,
            Arc::clone(&self.heap),
            self.quota,
            self.config.n_threads,
            &self.config.controller,
            self.config.escalate_after,
            self.config.recorder.clone(),
            self.config.contention,
            self.config.clock,
        ))
    }

    /// The shared heap (allocation and inspection; all views see it).
    pub fn heap(&self) -> &WordHeap {
        &self.heap
    }

    /// Allocates a block from the shared heap (`malloc_block`).
    pub fn alloc_block(&self, size_words: u32) -> Option<Addr> {
        self.heap.alloc_block(size_words)
    }

    /// The route table, for assertions and exports.
    pub fn route(&self) -> &RouteTable {
        &self.route
    }

    /// The repartition policy this domain runs.
    pub fn policy(&self) -> &RepartitionPolicy {
        &self.policy
    }

    /// Every view slot, in slot order (retired incarnations included — their
    /// counters still belong in aggregate stats).
    pub fn views(&self) -> Vec<Arc<View>> {
        self.views.lock().iter().cloned().collect()
    }

    /// Live (non-retired) views, in slot order.
    pub fn live_views(&self) -> Vec<Arc<View>> {
        self.views
            .lock()
            .iter()
            .filter(|v| !v.gate().is_retired())
            .cloned()
            .collect()
    }

    /// Controller/dispatch counters.
    pub fn stats(&self) -> DomainStats {
        DomainStats {
            repartitions: self.repartitions.load(Ordering::Acquire),
            splits: self.splits.load(Ordering::Acquire),
            merges: self.merges.load(Ordering::Acquire),
            split_drain_cycles: self.split_drain_cycles.load(Ordering::Acquire),
            straddles: self.straddles.load(Ordering::Acquire),
            reroutes: self.reroutes.load(Ordering::Acquire),
            live_views: self
                .views
                .lock()
                .iter()
                .filter(|v| !v.gate().is_retired())
                .count(),
            route_epoch: self.route.epoch(),
        }
    }

    fn view_at(&self, slot: u32) -> Arc<View> {
        Arc::clone(&self.views.lock()[slot as usize])
    }

    fn note_cross(&self, from: u32, to: u32) {
        let mv = self.policy.max_views.max(1);
        let (f, t) = (from as usize % mv, to as usize % mv);
        self.cross[f * mv + t].fetch_add(1, Ordering::AcqRel);
        self.straddles.fetch_add(1, Ordering::AcqRel);
    }

    /// Runs `body` as one atomic transaction against the domain.
    ///
    /// `hint` selects the dispatch view: the transaction runs on the view
    /// owning the hint's bucket. The body must route all its accesses
    /// through the given [`DomainTx`] and propagate its errors with `?`
    /// (swallowing them breaks the re-route protocol). Accesses outside
    /// the hint's view are legal but expensive: they divert the
    /// transaction to the union-drained cross-view path and push the
    /// owning pair toward a merge.
    pub async fn transact<T, F>(&self, rt: &Rt, hint: Addr, mut body: F) -> T
    where
        F: for<'a, 'b, 'v> AsyncFnMut(&'a mut DomainTx<'b, 'v>) -> Result<T, TxError>,
    {
        loop {
            let slot = self.route.owner_of(hint);
            let view = self.view_at(slot);
            // Exit decision carried across attempts inside one driver call:
            // a dirty attempt that must leave aborts first (rolling back
            // its buffered writes) and exits through the next, clean
            // attempt's empty commit.
            let mut pending_exit: Option<Exit> = None;
            let routed = view
                .transact(rt, async |tx: &mut TxHandle<'_>| {
                    if let Some(e) = pending_exit {
                        return Ok(Routed::Out(e));
                    }
                    // Entry check, *after* admission: our view is drained
                    // before any bucket it owns moves, so if the hint still
                    // routes here the route is stable for this whole
                    // attempt.
                    if self.route.owner_of(hint) != slot {
                        return Ok(Routed::Out(Exit::Reroute));
                    }
                    let mut dtx = DomainTx {
                        inner: DomainAccess::Tx(tx),
                        route: &self.route,
                        slot,
                        foreign: None,
                        dirty: false,
                        write_summary: 0,
                        direct_cycles: 0,
                    };
                    let out = body(&mut dtx).await;
                    let (foreign, dirty) = (dtx.foreign, dtx.dirty);
                    match out {
                        // A body that recovered from (or never hit) a
                        // foreign access commits normally: everything in
                        // its read/write set passed the route check.
                        Ok(v) => Ok(Routed::Done(v)),
                        Err(e) => match foreign {
                            None => Err(e),
                            Some(owner) => {
                                let exit = Exit::Straddle(owner);
                                if dirty {
                                    // Buffered writes must never leak
                                    // through the exit commit: abort this
                                    // attempt, leave on the re-run.
                                    pending_exit = Some(exit);
                                    Err(TxError::Abort(AbortReason::Explicit))
                                } else {
                                    // Read-only so far: the exit commit is
                                    // a validated no-op.
                                    Ok(Routed::Out(exit))
                                }
                            }
                        },
                    }
                })
                .await;
            match routed {
                Routed::Done(v) => return v,
                Routed::Out(Exit::Reroute) => {
                    self.reroutes.fetch_add(1, Ordering::AcqRel);
                    rt.charge(REROUTE_COST).await;
                }
                Routed::Out(Exit::Straddle(owner)) => {
                    self.note_cross(slot, owner);
                    return self.run_union(rt, slot, &mut body).await;
                }
            }
        }
    }

    /// The cross-view fallback: exclusive drain over every live view
    /// (ascending slot order — the same total order the controller uses,
    /// so the two can never deadlock), then direct irrevocable access to
    /// the shared heap. Serializable by construction: every metadata
    /// domain is quiesced while the transaction runs.
    async fn run_union<T, F>(&self, rt: &Rt, home_slot: u32, body: &mut F) -> T
    where
        F: for<'a, 'b, 'v> AsyncFnMut(&'a mut DomainTx<'b, 'v>) -> Result<T, TxError>,
    {
        loop {
            let views = self.views();
            let epoch0 = self.route.epoch();
            let mut guards: Vec<GateGuard<'_>> = Vec::with_capacity(views.len());
            for v in &views {
                if v.gate().is_retired() {
                    continue;
                }
                v.tm().clock_flush();
                guards.push(v.gate().acquire_exclusive(rt).await);
            }
            // A repartition needs exclusive admission to a view we now
            // hold, so if the epoch is unchanged the set of live views is
            // exactly the set we drained; a change means a split slipped
            // in between our snapshot and the last acquisition — release
            // everything and re-acquire over the new world.
            if self.route.epoch() != epoch0 {
                drop(guards);
                continue;
            }
            let home = &views[home_slot as usize];
            let rec = home.recorder_handle(rt.thread_index());
            let mut dtx = DomainTx {
                inner: DomainAccess::Direct {
                    heap: &self.heap,
                    rt,
                },
                route: &self.route,
                slot: home_slot,
                foreign: None,
                dirty: false,
                write_summary: 0,
                direct_cycles: 0,
            };
            let value = loop {
                match body(&mut dtx).await {
                    Ok(v) => break v,
                    Err(e) => {
                        // Direct mode is irrevocable, like the starvation
                        // watchdog's lock mode: nothing written so far can
                        // be rolled back. A clean failure may re-run; a
                        // dirty one cannot be recovered.
                        assert!(
                            !dtx.dirty,
                            "cross-view (union-drained) transaction failed after \
                             writing; irrevocable writes cannot be rolled back: {e}"
                        );
                        assert!(
                            !matches!(e, TxError::Retry),
                            "retry() in a cross-view (union-drained) transaction: \
                             blocking is not supported on the irrevocable path"
                        );
                        dtx.foreign = None;
                        rt.charge(cost::BUSY_RETRY).await;
                    }
                }
            };
            let DomainTx {
                direct_cycles: cycles,
                write_summary: wake,
                ..
            } = dtx;
            // Book the commit on the home view so throughput aggregation
            // and the commit-histogram invariant (count == tm.commits)
            // both hold.
            home.tm().stats().record_commit(rt.thread_index(), cycles);
            home.hists().commit.record(cycles);
            rec.record(
                rt.now(),
                EventKind::TxCommit {
                    view: home.id() as u16,
                    cycles,
                },
            );
            drop(guards);
            if wake != 0 {
                for v in &views {
                    v.waits().publish(wake);
                }
            }
            return value;
        }
    }

    /// The repartitioning controller loop. Spawn as its own task; it
    /// evaluates every [`RepartitionPolicy::interval`] virtual cycles and
    /// exits when `remaining` reaches zero (the worker tasks' shared
    /// countdown — a simulator run cannot end while any task loops
    /// forever).
    pub async fn run_controller(&self, rt: &Rt, remaining: &AtomicUsize) {
        while remaining.load(Ordering::Acquire) > 0 {
            rt.charge(self.policy.interval).await;
            self.rebalance(rt).await;
        }
    }

    /// One controller evaluation: at most one repartition, behind the
    /// hysteresis gates. Public so tests and single-shot harnesses can
    /// drive the decision without the periodic task.
    pub async fn rebalance(&self, rt: &Rt) {
        let cooled = rt
            .now()
            .saturating_sub(self.last_repartition.load(Ordering::Acquire))
            >= self.policy.cooldown
            || self.repartitions.load(Ordering::Acquire) == 0;
        if !cooled {
            return;
        }
        if let Some((a, b)) = self.merge_candidate() {
            self.merge(rt, a, b).await;
            return;
        }
        self.try_split(rt).await;
    }

    /// The live pair with the highest straddle pressure at or above the
    /// merge threshold, ties to the lowest slots. Consumes the matrix.
    fn merge_candidate(&self) -> Option<(u32, u32)> {
        let mv = self.policy.max_views.max(1);
        let live: Vec<u32> = {
            let views = self.views.lock();
            (0..views.len() as u32)
                .filter(|&s| !views[s as usize].gate().is_retired())
                .collect()
        };
        let mut best: Option<(u64, u32, u32)> = None;
        for (i, &a) in live.iter().enumerate() {
            for &b in &live[i + 1..] {
                let (ai, bi) = (a as usize % mv, b as usize % mv);
                let p = self.cross[ai * mv + bi].load(Ordering::Acquire)
                    + self.cross[bi * mv + ai].load(Ordering::Acquire);
                if p >= self.policy.merge_cross_threshold && best.is_none_or(|(bp, ..)| p > bp) {
                    best = Some((p, a, b));
                }
            }
        }
        // Pressure is per-interval: stale straddles must not accumulate
        // into a later spurious merge.
        for c in &self.cross {
            c.store(0, Ordering::Release);
        }
        best.map(|(_, a, b)| (a, b))
    }

    /// Evaluates every live view for a split and executes the best
    /// eligible one.
    async fn try_split(&self, rt: &Rt) {
        let Some(recorder) = self.config.recorder.clone() else {
            return; // no profile source: split decisions are impossible
        };
        let live_count = self
            .views
            .lock()
            .iter()
            .filter(|v| !v.gate().is_retired())
            .count();
        if live_count >= self.policy.max_views {
            return;
        }
        let traces = recorder.snapshot();
        let slots: Vec<u32> = (0..self.views.lock().len() as u32).collect();
        for slot in slots {
            let view = self.view_at(slot);
            if view.gate().is_retired() {
                continue;
            }
            let snap = view.tm().stats().snapshot();
            let delta = {
                let mut prev = self.prev_stats.lock();
                let d = snap.since(&prev[slot as usize]);
                prev[slot as usize] = snap;
                d
            };
            let total = delta.cycles_aborted + delta.cycles_successful;
            if total == 0
                || (delta.cycles_aborted as f64 / total as f64) < self.policy.min_waste_share
            {
                continue;
            }
            let profile = ConflictProfile::from_traces_for_view(&traces, view.id() as u16);
            if profile.aborts_total < self.policy.min_aborts {
                continue;
            }
            let part = profile.suggest_bipartition();
            if part.separability < self.policy.min_separability {
                continue;
            }
            let owned = self.route.owned_mask(slot);
            let mut move_mask = 0u64;
            for b in part.side_buckets(1) {
                if b < PROFILE_BUCKETS {
                    move_mask |= 1 << b;
                }
            }
            move_mask &= owned;
            // Both halves must be non-empty *within this view's ownership*,
            // or the split is a rename, not a partition.
            if move_mask == 0 || move_mask == owned {
                continue;
            }
            self.split(rt, slot, move_mask).await;
            return;
        }
    }

    /// Executes a split: drains `slot`, materialises a fresh view over the
    /// shared heap, and remaps `move_mask`'s buckets onto it.
    async fn split(&self, rt: &Rt, slot: u32, move_mask: u64) {
        let view = self.view_at(slot);
        let t0 = rt.now();
        // Same order as the escalation path: settle banked clock bumps,
        // then drain.
        view.tm().clock_flush();
        let guard = view.gate().acquire_exclusive(rt).await;
        debug_assert_eq!(
            move_mask & !self.route.owned_mask(slot),
            0,
            "split mask strayed outside the drained view's ownership"
        );
        let new_view = self.build_view();
        let new_slot = {
            let mut views = self.views.lock();
            match self.free_slots.lock().pop() {
                Some(s) => {
                    views[s as usize] = Arc::clone(&new_view);
                    s
                }
                None => {
                    views.push(Arc::clone(&new_view));
                    views.len() as u32 - 1
                }
            }
        };
        {
            let mut prev = self.prev_stats.lock();
            let ns = new_slot as usize;
            if prev.len() <= ns {
                prev.resize(ns + 1, StatsSnapshot::default());
            } else {
                prev[ns] = StatsSnapshot::default();
            }
        }
        self.route.remap(move_mask, new_slot);
        let drain = rt.now().saturating_sub(t0);
        self.bump_repartition(rt, drain);
        self.splits.fetch_add(1, Ordering::AcqRel);
        self.record_repartition(
            rt,
            EventKind::Repartition {
                view: view.id() as u16,
                partner: new_view.id() as u16,
                split: true,
                moved: move_mask,
                drain_cycles: drain,
            },
        );
        drop(guard);
        // Re-home parked waiters: wake-all *and* stamp every bucket epoch,
        // so both sleeping and in-flight parks re-run through the route
        // check instead of waiting on the wrong view's table.
        view.waits().publish(u64::MAX);
    }

    /// Executes a merge: drains both views (ascending slot order), remaps
    /// the higher slot's buckets onto the lower, retires the source gate.
    async fn merge(&self, rt: &Rt, a: u32, b: u32) {
        let (dst, src) = (a.min(b), a.max(b));
        let dv = self.view_at(dst);
        let sv = self.view_at(src);
        let t0 = rt.now();
        dv.tm().clock_flush();
        let dg = dv.gate().acquire_exclusive(rt).await;
        sv.tm().clock_flush();
        let sg = sv.gate().acquire_exclusive(rt).await;
        let mask = self.route.owned_mask(src);
        self.route.remap(mask, dst);
        sv.gate().retire();
        self.free_slots.lock().push(src);
        let drain = rt.now().saturating_sub(t0);
        self.bump_repartition(rt, drain);
        self.merges.fetch_add(1, Ordering::AcqRel);
        self.record_repartition(
            rt,
            EventKind::Repartition {
                view: dv.id() as u16,
                partner: sv.id() as u16,
                split: false,
                moved: mask,
                drain_cycles: drain,
            },
        );
        drop(sg);
        drop(dg);
        sv.waits().publish(u64::MAX);
        dv.waits().publish(u64::MAX);
    }

    fn bump_repartition(&self, rt: &Rt, drain: u64) {
        self.repartitions.fetch_add(1, Ordering::AcqRel);
        self.split_drain_cycles.fetch_add(drain, Ordering::AcqRel);
        self.last_repartition.store(rt.now(), Ordering::Release);
    }

    fn record_repartition(&self, rt: &Rt, event: EventKind) {
        if let Some(rec) = &self.config.recorder {
            rec.record(rt.thread_index(), rt.now(), event);
        }
    }
}

impl std::fmt::Debug for AdaptiveDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveDomain")
            .field("stats", &self.stats())
            .field("route", &self.route)
            .finish()
    }
}

/// Which machinery backs a [`DomainTx`]'s accesses.
enum DomainAccess<'h, 'v> {
    /// The normal case: a transactional attempt on the dispatch view.
    Tx(&'h mut TxHandle<'v>),
    /// Union mode: every live view drained, direct heap access.
    Direct {
        /// The shared word array.
        heap: &'h WordHeap,
        /// Runtime for cost charging.
        rt: &'h Rt,
    },
}

/// In-transaction capability for [`AdaptiveDomain::transact`] bodies: a
/// [`TxHandle`] wrapper that checks every access against the route table.
pub struct DomainTx<'h, 'v> {
    inner: DomainAccess<'h, 'v>,
    route: &'h RouteTable,
    slot: u32,
    /// Owner slot of the first foreign access this attempt observed.
    foreign: Option<u32>,
    /// Whether this attempt issued any write.
    dirty: bool,
    /// Bloom summary of direct-mode writes (for post-commit wakeups).
    write_summary: u64,
    /// Cycles consumed in direct mode (booked as the commit's cost).
    direct_cycles: u64,
}

impl DomainTx<'_, '_> {
    /// Pre-access route check. `Ok` means the address belongs to the view
    /// this attempt runs on (always true in union mode, where every view
    /// is drained).
    fn check_route(&mut self, addr: Addr) -> Result<(), TxError> {
        if matches!(self.inner, DomainAccess::Direct { .. }) {
            return Ok(());
        }
        let owner = self.route.owner_of(addr);
        if owner == self.slot {
            return Ok(());
        }
        if self.foreign.is_none() {
            self.foreign = Some(owner);
        }
        // The dispatch loop inspects `foreign` when this error surfaces;
        // bodies must propagate it with `?`.
        Err(TxError::Abort(AbortReason::Explicit))
    }

    /// Transactional read of one word (route-checked).
    pub async fn read(&mut self, addr: Addr) -> Result<u64, TxError> {
        self.check_route(addr)?;
        match &mut self.inner {
            DomainAccess::Tx(tx) => tx.read(addr).await,
            DomainAccess::Direct { heap, rt } => {
                self.direct_cycles += cost::DIRECT_ACCESS;
                rt.charge(cost::DIRECT_ACCESS).await;
                Ok(heap.load(addr))
            }
        }
    }

    /// Transactional write of one word (route-checked).
    pub async fn write(&mut self, addr: Addr, value: u64) -> Result<(), TxError> {
        self.check_route(addr)?;
        match &mut self.inner {
            DomainAccess::Tx(tx) => {
                let out = tx.write(addr, value).await;
                if out.is_ok() {
                    self.dirty = true;
                }
                out
            }
            DomainAccess::Direct { heap, rt } => {
                self.dirty = true;
                self.write_summary |= 1u64 << bloom_bucket(addr);
                self.direct_cycles += cost::DIRECT_ACCESS;
                rt.charge(cost::DIRECT_ACCESS).await;
                heap.store(addr, value);
                Ok(())
            }
        }
    }

    /// Thread-private work inside the transaction (see
    /// [`TxHandle::local_work`]).
    pub async fn local_work(&mut self, reads: u64, writes: u64, nops: u64) {
        match &mut self.inner {
            DomainAccess::Tx(tx) => tx.local_work(reads, writes, nops).await,
            DomainAccess::Direct { rt, .. } => {
                let cycles = (reads + writes) * cost::LOCAL_ACCESS + nops * cost::NOP;
                self.direct_cycles += cycles;
                rt.work(cycles).await;
            }
        }
    }

    /// Blocks the transaction until its read set changes (see
    /// [`TxHandle::retry`]). Unsupported on the cross-view union path,
    /// where the attempt is irrevocable.
    pub fn retry<T>(&self) -> Result<T, TxError> {
        Err(TxError::Retry)
    }

    /// The slot of the view this attempt was dispatched to (union mode:
    /// the home slot). For diagnostics and tests.
    pub fn slot(&self) -> u32 {
        self.slot
    }

    /// Whether this attempt is running on the irrevocable union path.
    pub fn is_union(&self) -> bool {
        matches!(self.inner, DomainAccess::Direct { .. })
    }
}
