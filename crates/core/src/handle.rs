//! The transaction handle and retry driver.
//!
//! [`drive_transaction`] implements the paper's `acquire_view` /
//! `release_view` protocol (§II):
//!
//! * **acquire**: block until admitted by the view's RAC gate; admission at
//!   quota 1 is exclusive and selects the uninstrumented lock mode.
//! * run the body; **release**: try to commit. On failure: abort, roll
//!   back, *decrease P and reacquire the view* — re-admission matters
//!   because the quota may have changed while we were inside.
//!
//! Every operation charges its cost to the runtime, so under the simulator
//! each shared access is an interleaving point and under real threads the
//! charge is free. Per-attempt work is recorded into the view's statistics
//! as aborted or successful cycles — the inputs to δ(Q).

use votm_rac::AdmissionMode;
use votm_sim::Rt;
use votm_stm::{cost, Addr, CommitPhase, OpError, TxCtx};
use votm_utils::Backoff;

use crate::view::View;

/// The current transaction attempt must be rolled back and retried.
///
/// Returned by [`TxHandle`] operations on conflict; propagate it with `?`.
/// The driver catches it, rolls back, and re-runs the body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxAbort;

/// Consecutive `Busy` retries of one read/write before the attempt aborts
/// (bounded spinning, TinySTM-style; breaks reader/writer wait-for cycles).
const BUSY_ABORT_LIMIT: u32 = 64;

/// In-transaction capability: all shared-memory access inside
/// [`View::transact`] goes through this handle.
pub struct TxHandle<'v> {
    view: &'v View,
    rt: Rt,
    ctx: TxCtx,
    read_only: bool,
    /// Virtual cycles consumed by this attempt (simulator accounting).
    attempt_work: u64,
    /// Blocks allocated by this attempt — freed again if it aborts.
    allocs: Vec<Addr>,
    /// Frees requested by this attempt — applied only if it commits.
    frees: Vec<Addr>,
    backoff: Backoff,
}

impl<'v> TxHandle<'v> {
    fn new(view: &'v View, rt: Rt, mode: AdmissionMode, read_only: bool) -> Self {
        let ctx = match mode {
            AdmissionMode::Exclusive => view.tm().direct_ctx(),
            AdmissionMode::Transactional => view.tm().tx_ctx(rt.thread_index()),
        };
        Self {
            view,
            rt,
            ctx,
            read_only,
            attempt_work: 0,
            allocs: Vec::new(),
            frees: Vec::new(),
            backoff: Backoff::new(),
        }
    }

    /// Drains the context's work units, charges them to the runtime and
    /// books them against this attempt.
    async fn charge_pending(&mut self) {
        let w = self.ctx.take_work();
        self.attempt_work += w;
        self.rt.charge(w).await;
    }

    /// Lets a `Busy` operation wait: charges model time; under real threads
    /// also spins/yields so the lock holder can run.
    async fn busy_wait(&mut self) {
        self.view.tm().stats().record_busy();
        self.attempt_work += cost::BUSY_RETRY;
        self.rt.charge(cost::BUSY_RETRY).await;
        if !self.rt.is_virtual() {
            self.backoff.snooze();
        }
    }

    /// Transactional read of one word.
    pub async fn read(&mut self, addr: Addr) -> Result<u64, TxAbort> {
        let mut streak = 0u32;
        loop {
            match self.ctx.read(self.view.tm(), addr) {
                Ok(v) => {
                    self.charge_pending().await;
                    return Ok(v);
                }
                Err(OpError::Busy) => {
                    self.charge_pending().await;
                    self.busy_wait().await;
                    streak += 1;
                    if streak >= BUSY_ABORT_LIMIT {
                        // Bounded spin: a wait-for cycle (two writers each
                        // spin-reading the other's locked orec) must break
                        // by aborting, like TinySTM's spin timeout.
                        return Err(TxAbort);
                    }
                }
                Err(OpError::Conflict) => {
                    self.charge_pending().await;
                    return Err(TxAbort);
                }
            }
        }
    }

    /// Transactional write of one word.
    ///
    /// # Panics
    /// In a read-only transaction ([`View::transact_ro`]).
    pub async fn write(&mut self, addr: Addr, value: u64) -> Result<(), TxAbort> {
        assert!(
            !self.read_only,
            "write inside a read-only view acquisition (acquire_Rview)"
        );
        let mut streak = 0u32;
        loop {
            match self.ctx.write(self.view.tm(), addr, value) {
                Ok(()) => {
                    self.charge_pending().await;
                    return Ok(());
                }
                Err(OpError::Busy) => {
                    self.charge_pending().await;
                    self.busy_wait().await;
                    streak += 1;
                    if streak >= BUSY_ABORT_LIMIT {
                        return Err(TxAbort);
                    }
                }
                Err(OpError::Conflict) => {
                    self.charge_pending().await;
                    return Err(TxAbort);
                }
            }
        }
    }

    /// Performs thread-private work inside the transaction: `reads`/`writes`
    /// accesses to thread-local memory plus `nops` cycles of computation
    /// (Eigenbench's cold-array accesses and NOPi). Under the simulator this
    /// advances virtual time; under real threads it actually spins.
    pub async fn local_work(&mut self, reads: u64, writes: u64, nops: u64) {
        let cycles = (reads + writes) * cost::LOCAL_ACCESS + nops * cost::NOP;
        self.attempt_work += cycles;
        self.rt.work(cycles).await;
    }

    /// Allocates a block inside the transaction. The allocation is undone if
    /// this attempt aborts.
    ///
    /// # Panics
    /// If the view's heap is exhausted (size your views for the workload).
    pub fn alloc(&mut self, size_words: u32) -> Addr {
        let addr = self
            .view
            .tm()
            .heap()
            .alloc_block(size_words)
            .expect("view heap exhausted");
        self.allocs.push(addr);
        addr
    }

    /// Frees a block from inside the transaction. Deferred until commit so
    /// an abort cannot leak another transaction's data.
    pub fn free(&mut self, addr: Addr) {
        self.frees.push(addr);
    }

    /// The runtime handle (for nested timing/diagnostics in workloads).
    pub fn rt(&self) -> &Rt {
        &self.rt
    }

    /// Rolls back attempt-local state (allocation log).
    fn rollback_side_effects(&mut self) {
        for addr in self.allocs.drain(..).rev() {
            self.view.tm().heap().free_block(addr);
        }
        self.frees.clear();
    }

    /// Applies deferred side effects after a successful commit.
    fn apply_side_effects(&mut self) {
        self.allocs.clear();
        for addr in self.frees.drain(..) {
            self.view.tm().heap().free_block(addr);
        }
    }
}

/// Runs `body` transactionally against `view` until an attempt commits.
pub(crate) async fn drive_transaction<'v, T, F>(
    view: &'v View,
    rt: &Rt,
    read_only: bool,
    mut body: F,
) -> T
where
    F: for<'h> AsyncFnMut(&'h mut TxHandle<'_>) -> Result<T, TxAbort>,
{
    let unrestricted = view.is_unrestricted();
    loop {
        // acquire_view: RAC admission (skipped for the no-RAC baselines).
        let mode = if unrestricted {
            AdmissionMode::Transactional
        } else {
            let wait_from = rt.now();
            let mode = view.gate().acquire(rt).await;
            let waited = rt.now().saturating_sub(wait_from);
            if waited > 0 {
                view.tm().stats().record_gate_wait(waited);
            }
            mode
        };

        let mut handle = TxHandle::new(view, rt.clone(), mode, read_only);
        let t0 = rt.now();

        // begin (NOrec can be Busy while a committer holds the seqlock).
        loop {
            match handle.ctx.begin(view.tm()) {
                Ok(()) => break,
                Err(OpError::Busy) => {
                    handle.charge_pending().await;
                    handle.busy_wait().await;
                }
                Err(OpError::Conflict) => unreachable!("begin never conflicts"),
            }
        }
        handle.charge_pending().await;

        let outcome = body(&mut handle).await;

        let committed = match outcome {
            Ok(value) => {
                // release_view step 1: try to commit.
                let committed = loop {
                    match handle.ctx.commit_begin(view.tm()) {
                        Ok(CommitPhase::Done) => break true,
                        Ok(CommitPhase::NeedsFinish { .. }) => {
                            // Hold the commit locks across the writeback
                            // window so concurrent transactions observe it.
                            handle.charge_pending().await;
                            handle.ctx.commit_finish(view.tm());
                            break true;
                        }
                        Err(OpError::Busy) => {
                            handle.charge_pending().await;
                            handle.busy_wait().await;
                        }
                        Err(OpError::Conflict) => break false,
                    }
                };
                if committed {
                    handle.charge_pending().await;
                    handle.apply_side_effects();
                    finish_attempt(view, rt, &mut handle, t0, true);
                    if !unrestricted {
                        view.gate().release(mode);
                    }
                    return value;
                }
                false
            }
            Err(TxAbort) => false,
        };
        debug_assert!(!committed);

        // Abort: roll back, decrease P, reacquire (paper release step 1).
        assert!(
            !handle.ctx.is_direct(),
            "lock-mode (exclusive) sections cannot abort"
        );
        handle.ctx.abort(view.tm());
        handle.charge_pending().await;
        handle.rollback_side_effects();
        finish_attempt(view, rt, &mut handle, t0, false);
        if !unrestricted {
            view.gate().release(mode);
        }
        // Loop back to reacquire admission and re-run the body.
    }
}

/// Books one attempt's cycles into the view statistics and pokes the
/// adaptive controller.
fn finish_attempt(view: &View, rt: &Rt, handle: &mut TxHandle<'_>, t0: u64, committed: bool) {
    // Simulator: the work-unit ledger *is* the cycle count. Real threads:
    // use the hardware timestamp delta, like the paper's rdtsc().
    let cycles = if rt.is_virtual() {
        std::mem::take(&mut handle.attempt_work)
    } else {
        handle.attempt_work = 0;
        rt.now().saturating_sub(t0)
    };
    if committed {
        view.tm().stats().record_commit(cycles);
    } else {
        view.tm().stats().record_abort(cycles);
    }
    if let Some(ctrl) = view.controller() {
        ctrl.on_tx_end(view.gate(), view.tm().stats());
    }
}
