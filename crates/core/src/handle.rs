//! The transaction handle and retry driver.
//!
//! [`drive_transaction`] implements the paper's `acquire_view` /
//! `release_view` protocol (§II):
//!
//! * **acquire**: block until admitted by the view's RAC gate; admission at
//!   quota 1 is exclusive and selects the uninstrumented lock mode.
//! * run the body; **release**: try to commit. On failure: abort, roll
//!   back, *decrease P and reacquire the view* — re-admission matters
//!   because the quota may have changed while we were inside.
//!
//! Every operation charges its cost to the runtime, so under the simulator
//! each shared access is an interleaving point and under real threads the
//! charge is free. Per-attempt work is recorded into the view's statistics
//! as aborted or successful cycles — the inputs to δ(Q).
//!
//! # Crash safety
//!
//! The pipeline is panic-safe by construction, with two RAII layers:
//!
//! * admission is held as a [`votm_rac::GateGuard`], so `P` is decremented
//!   on every exit path including unwinds;
//! * the [`TxHandle`] itself is a drop guard: if the body or the commit
//!   path unwinds with a live transaction, its `Drop` aborts the attempt
//!   (releasing orec locks / never stranding the NOrec seqlock), rolls
//!   back attempt-local allocations, and books the cycles as aborted. In
//!   the one window where abort is impossible — after a `NeedsFinish`
//!   commit has published its writeback but before `commit_finish` — the
//!   drop guard *finishes* the commit instead, which is the only exit that
//!   leaves the view consistent.
//!
//! Because the handle is declared after the gate guard, Rust's reverse
//! drop order runs transaction recovery first and releases admission
//! second, exactly like the happy path.
//!
//! # Starvation watchdog
//!
//! The driver tracks each transaction's consecutive-abort streak. When a
//! view is configured with [`crate::VotmConfig::escalate_after`]` = Some(K)`
//! and a transaction loses `K` attempts in a row, the next re-admission
//! goes through [`votm_rac::AdmissionGate::acquire_exclusive`]: the gate
//! drains, the starving transaction runs alone in the irrevocable Q = 1
//! lock mode (which cannot abort), and ordinary admissions resume when it
//! leaves. The streak is a *driver-local* variable of one
//! [`drive_transaction`] call: nothing another transaction does — commit,
//! abort, or contention-manager kill — can reset it, so a starving
//! transaction cannot be masked from escalation by unrelated traffic on
//! the same view. Contention-manager kills increment it like any other
//! abort.
//!
//! # Contention management
//!
//! Every conflict-resolution site consults the view's pluggable
//! [`votm_rac::ContentionManager`] (see `votm_rac::cm`): `Busy` polls and
//! `Conflict` errors from reads, writes and `commit_begin` become
//! [`votm_rac::SiteVerdict`]s — keep waiting (optionally dooming the
//! conflicting transaction first) or abort-self with a pre-re-admission
//! backoff. Dooming is cooperative: the winner marks the victim's
//! [`votm_rac::CmShared`] slot and the victim converts the mark into an
//! `AbortReason::CmKilled` abort at its next operation boundary, so locks
//! are always released through the victim's own abort path. Under the
//! default passive [`votm_rac::CmPolicy::Backoff`] the driver skips all of
//! this and reproduces the historical behaviour exactly.
//!
//! # Blocking: `retry` / `or_else`
//!
//! A body that returns [`TxError::Retry`] (via [`TxHandle::retry`]) is not
//! aborted-and-raced like a conflict: the driver rolls the attempt back,
//! **releases its admission slot**, and parks the task on the view's
//! wait table (`wait.rs`), keyed by the union of the read-set Bloom
//! summaries of every alternative the attempt tried. Only a committing
//! writer whose write set intersects that key wakes it (see `wait.rs` for
//! the lost-wakeup-free protocol). Parks deliberately bypass the
//! contention manager (no karma, no loser backoff — blocking is not
//! losing) and leave the starvation streak untouched; only a park that
//! *times out* bumps the streak, so a lost wakeup escalates through the
//! watchdog instead of hanging. [`TxHandle::or_else`] composes
//! alternatives: if the first retries, the second runs in the same
//! attempt; only when every alternative retries does the task park.

use votm_obs::{
    addr_bucket, AbortReason, ConflictSiteKind, EventKind, RecorderHandle, ADDR_BUCKET_NONE,
};
use votm_rac::cm::HARD_PATIENCE;
use votm_rac::{AdmissionMode, CmTx, SiteVerdict};
use votm_sim::{FaultEvent, Rt};
use votm_stm::{bloom_bucket, cost, Addr, CommitPhase, ConflictSite, OpError, TxCtx};
use votm_utils::JitterBackoff;

use crate::error::TxError;
use crate::view::View;
use crate::wait::{ParkOutcome, PARK_TIMEOUT};

/// The current transaction attempt must be rolled back and retried.
///
/// Returned by [`TxHandle`] operations on conflict; propagate it with `?`.
/// The driver catches it, rolls back, and re-runs the body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxAbort;

/// A [`TxHandle::alloc`] failed: the view's heap could not satisfy the
/// request even after one `brk_view` growth attempt.
///
/// Convertible into [`TxAbort`] (so `tx.alloc(n)?` retries the transaction,
/// which is useful when other transactions' deferred frees may release
/// space), or inspectable for a graceful out-of-memory path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapExhausted {
    /// The allocation size that could not be satisfied.
    pub requested_words: u32,
}

impl From<HeapExhausted> for TxAbort {
    fn from(_: HeapExhausted) -> Self {
        TxAbort
    }
}

impl std::fmt::Display for HeapExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "view heap exhausted allocating {} words (after brk_view growth attempt)",
            self.requested_words
        )
    }
}

impl std::error::Error for HeapExhausted {}

/// Consecutive `Busy` retries of one read/write before the attempt aborts
/// (bounded spinning, TinySTM-style; breaks reader/writer wait-for cycles).
/// This is the passive default's patience; active contention managers
/// substitute their own — see [`votm_rac::cm::BUSY_PATIENCE`].
const BUSY_ABORT_LIMIT: u32 = votm_rac::cm::BUSY_PATIENCE;

/// Alternative-selection state for [`TxHandle::or_else`], owned by the
/// driver so it survives the immediate restart between "the first
/// alternative retried" and "now run the second".
///
/// Instead of checkpointing and rolling back partial read/write sets (which
/// none of the three algorithms support mid-attempt), `or_else` is
/// *restart-based*: when an alternative retries, the whole attempt aborts
/// and re-runs, and this table tells the re-run which branch each `or_else`
/// call should take this time. Indices are assigned in call order, which is
/// deterministic for deterministic bodies. After a full retry propagates
/// (every alternative blocked), all decisions are back to `false`, so the
/// post-park wakeup re-runs from the first alternative — Haskell `orElse`
/// semantics.
#[derive(Debug, Default)]
pub(crate) struct AltCtl {
    /// `decisions[i]`: whether the `i`-th `or_else` encountered this
    /// attempt runs its second alternative.
    decisions: Vec<bool>,
    /// Next index to hand out (reset to 0 at each attempt start).
    cursor: usize,
    /// Set when an alternative flipped during this attempt: the pending
    /// `TxError::Retry` means "restart immediately to try the other
    /// branch", not "park".
    restart: bool,
}

impl AltCtl {
    /// Resets the per-attempt half of the state; decisions persist.
    fn begin_attempt(&mut self) {
        self.cursor = 0;
        self.restart = false;
    }
}

/// In-transaction capability: all shared-memory access inside
/// [`View::transact`] goes through this handle.
///
/// The handle doubles as the pipeline's unwind guard — see the module docs'
/// *Crash safety* section for what its `Drop` restores.
pub struct TxHandle<'v> {
    view: &'v View,
    rt: Rt,
    ctx: TxCtx,
    read_only: bool,
    /// Virtual cycles consumed by this attempt (simulator accounting).
    attempt_work: u64,
    /// Blocks allocated by this attempt — freed again if it aborts.
    allocs: Vec<Addr>,
    /// Frees requested by this attempt — applied only if it commits.
    frees: Vec<Addr>,
    backoff: JitterBackoff,
    /// Cycle timestamp at attempt start (real-thread accounting).
    start: u64,
    /// Set by [`Self::finish`]; a drop with this still false is an unwind.
    finished: bool,
    /// Structured cause of the pending abort, refined as conflicts are
    /// detected; reported if this attempt ends without committing.
    abort_reason: AbortReason,
    /// Flight-recorder handle bound to this thread's ring (dead when the
    /// system has no recorder configured).
    rec: RecorderHandle,
    /// Contention-management state of the logical transaction this attempt
    /// belongs to; the driver reads it back after an abort so karma and the
    /// first-attempt timestamp survive.
    cm_tx: CmTx,
    /// True when the view's contention manager is active *and* this attempt
    /// is transactional: the driver publishes priorities, honours dooms and
    /// consults site verdicts. False (passive default or lock mode) keeps
    /// the historical hot path bit-identical.
    cm_active: bool,
    /// Conflict site behind the pending abort, captured alongside
    /// `abort_reason` so the profiler can attribute the wasted cycles.
    conflict_site: ConflictSite,
    /// Address-bucket bitmaps of this attempt's reads and writes — the
    /// profiler's co-access footprint. Maintained only while a recorder is
    /// live; never charged to virtual time.
    fp_reads: u64,
    /// Write half of the footprint.
    fp_writes: u64,
    /// Heap capacity in words, cached for the footprint bucket scale.
    cap_words: u64,
    /// Bloom summary (same 64-bucket hash as the NOrec write-set filter) of
    /// every address this attempt read — the park key for `retry`. A
    /// single shift-and-or per read; never charged to virtual time.
    read_summary: u64,
    /// Bloom summary of this attempt's writes. For transactional modes the
    /// context's write set carries the same information; this handle-level
    /// copy also covers direct (lock-mode) attempts, whose context has no
    /// write set, so escalated commits still wake parked readers.
    write_summary: u64,
    /// `or_else` alternative selection, threaded through from the driver.
    alt: AltCtl,
}

impl<'v> TxHandle<'v> {
    fn new(
        view: &'v View,
        rt: Rt,
        mode: AdmissionMode,
        read_only: bool,
        mut cm_tx: CmTx,
        alt: AltCtl,
    ) -> Self {
        let ctx = match mode {
            AdmissionMode::Exclusive => view.tm().direct_ctx(),
            AdmissionMode::Transactional => view.tm().tx_ctx(rt.thread_index()),
        };
        let cm_active = view.cm().active() && !ctx.is_direct();
        if cm_active {
            // Publish this attempt's priority and open a fresh doom epoch
            // (which also clears any doom aimed at the previous attempt).
            let tid = rt.thread_index();
            cm_tx.prio = view.cm().manager().priority(&cm_tx, tid, rt.now());
            cm_tx.epoch = view.cm().shared().attempt_begin(tid, cm_tx.prio);
        }
        let start = rt.now();
        let backoff = JitterBackoff::new(rt.thread_index() as u64);
        let rec = view.recorder_handle(rt.thread_index());
        Self {
            view,
            rt,
            ctx,
            read_only,
            attempt_work: 0,
            allocs: Vec::new(),
            frees: Vec::new(),
            backoff,
            start,
            finished: false,
            abort_reason: AbortReason::Explicit,
            rec,
            cm_tx,
            cm_active,
            conflict_site: ConflictSite::None,
            fp_reads: 0,
            fp_writes: 0,
            cap_words: view.tm().heap().size_words() as u64,
            read_summary: 0,
            write_summary: 0,
            alt,
        }
    }

    /// This view's id as the compact event field.
    #[inline]
    fn vid(&self) -> u16 {
        self.view.id() as u16
    }

    /// Folds one successful access into the footprint bitmaps. Recorder-off
    /// runs skip even the bucket arithmetic; recorded runs pay a few real
    /// instructions but zero virtual cycles, preserving the PR 3 contract.
    #[inline]
    fn note_access(&mut self, addr: Addr, write: bool) {
        if self.rec.is_live() {
            let bit = 1u64 << addr_bucket(u64::from(addr.0), self.cap_words);
            if write {
                self.fp_writes |= bit;
            } else {
                self.fp_reads |= bit;
            }
        }
    }

    /// Captures the abort cause *and* its conflict site in one step so the
    /// two can never disagree.
    #[inline]
    fn set_abort_cause(&mut self, reason: AbortReason, site: ConflictSite) {
        self.abort_reason = reason;
        self.conflict_site = site;
    }

    /// Drains the context's work units, charges them to the runtime and
    /// books them against this attempt.
    async fn charge_pending(&mut self) {
        let w = self.ctx.take_work();
        self.attempt_work += w;
        self.rt.charge(w).await;
    }

    /// Lets a `Busy` operation wait: charges model time; under real threads
    /// also spins/yields so the lock holder can run.
    async fn busy_wait(&mut self) {
        self.view.tm().stats().record_busy(self.rt.thread_index());
        self.attempt_work += cost::BUSY_RETRY;
        self.rt.charge(cost::BUSY_RETRY).await;
        if !self.rt.is_virtual() {
            self.backoff.snooze();
        }
    }

    /// Consults the runtime's fault plan at an interleaving point. Direct
    /// (exclusive lock-mode) sections never take faults: they cannot abort,
    /// and injecting panics there would tear uninstrumented state the
    /// recovery machinery cannot see.
    async fn fault_point(&mut self) -> Result<(), TxAbort> {
        if self.ctx.is_direct() {
            return Ok(());
        }
        match self.rt.take_fault() {
            None => Ok(()),
            Some(FaultEvent::Delay(d)) => {
                self.rec.record(
                    self.rt.now(),
                    EventKind::Fault {
                        view: self.vid(),
                        code: 0,
                        cycles: d,
                    },
                );
                self.attempt_work += d;
                self.rt.charge(d).await;
                Ok(())
            }
            Some(FaultEvent::Abort) => {
                self.rec.record(
                    self.rt.now(),
                    EventKind::Fault {
                        view: self.vid(),
                        code: 1,
                        cycles: 0,
                    },
                );
                self.set_abort_cause(AbortReason::FaultInjected, ConflictSite::None);
                Err(TxAbort)
            }
            Some(FaultEvent::Panic) => {
                self.rec.record(
                    self.rt.now(),
                    EventKind::Fault {
                        view: self.vid(),
                        code: 2,
                        cycles: 0,
                    },
                );
                panic!("injected fault: panic at vtime {}", self.rt.now())
            }
        }
    }

    /// Fault point for contexts that cannot abort (mid-commit, local work):
    /// delivers panics and delays, downgrades `Abort` draws to no-ops.
    async fn fault_point_no_abort(&mut self) {
        if self.ctx.is_direct() {
            return;
        }
        match self.rt.take_fault() {
            None | Some(FaultEvent::Abort) => {}
            Some(FaultEvent::Delay(d)) => {
                self.rec.record(
                    self.rt.now(),
                    EventKind::Fault {
                        view: self.vid(),
                        code: 0,
                        cycles: d,
                    },
                );
                self.attempt_work += d;
                self.rt.charge(d).await;
            }
            Some(FaultEvent::Panic) => {
                self.rec.record(
                    self.rt.now(),
                    EventKind::Fault {
                        view: self.vid(),
                        code: 2,
                        cycles: 0,
                    },
                );
                panic!("injected fault: panic at vtime {}", self.rt.now())
            }
        }
    }

    /// Converts a pending doom mark into a `CmKilled` abort. No-op under a
    /// passive manager or in lock mode. This is the victim's half of the
    /// polite-kill protocol: checked at every operation boundary so a
    /// doomed transaction leaves within a bounded number of its own steps,
    /// releasing its locks through the normal abort path. The kill charges
    /// the same loser backoff as an `AbortSelf` verdict — a victim that
    /// re-armed instantly would reach the winner's lock before it commits
    /// and (under priorities that grow with aborts, like Karma's account)
    /// counter-kill it, ping-ponging without progress.
    #[inline]
    fn cm_doom_check(&mut self) -> Result<(), TxAbort> {
        if self.cm_active
            && self
                .view
                .cm()
                .shared()
                .doomed_by(self.rt.thread_index(), self.cm_tx.epoch)
                .is_some()
        {
            self.set_abort_cause(AbortReason::CmKilled, ConflictSite::None);
            self.cm_tx.loser_backoff = self.cm_tx.yield_backoff();
            return Err(TxAbort);
        }
        Ok(())
    }

    /// Resolves one `Busy`/`Conflict` poll of an operation through the
    /// view's contention manager. The caller has already charged pending
    /// work. `Ok(())` means retry the operation (one busy wait has been
    /// served); `Err(TxAbort)` aborts the attempt with `abort_reason` set.
    async fn cm_site(&mut self, err: OpError, spins: &mut u32) -> Result<(), TxAbort> {
        let busy = matches!(err, OpError::Busy);
        if !self.cm_active {
            // The historical behaviour, bit for bit: bounded spin on Busy,
            // abort-self on Conflict. A wait-for cycle (two writers each
            // spin-reading the other's locked orec) must break by
            // aborting, like TinySTM's spin timeout.
            if busy {
                self.busy_wait().await;
                *spins += 1;
                if *spins >= BUSY_ABORT_LIMIT {
                    self.set_abort_cause(AbortReason::WriteLockBusy, ConflictSite::None);
                    return Err(TxAbort);
                }
                return Ok(());
            }
            self.set_abort_cause(self.ctx.conflict_reason(), self.ctx.conflict_site());
            return Err(TxAbort);
        }
        // A doomed attempt yields before consulting its own verdict: a
        // higher-priority transaction already asked for the road.
        self.cm_doom_check()?;
        let tid = self.rt.thread_index();
        let cm = self.view.cm();
        *spins += 1;
        let enemy = self.ctx.conflict_enemy();
        let verdict = if busy {
            cm.manager()
                .on_busy(*spins, enemy, cm.shared(), &self.cm_tx, tid)
        } else if self.ctx.conflict_reason() == AbortReason::FalseConflict {
            // Coarse-clock false conflict: no enemy exists to doom or wait
            // for (the conflicting commit may have finished before this
            // attempt began), so the priority machinery doesn't apply.
            cm.manager().on_false_conflict(&self.cm_tx)
        } else {
            cm.manager()
                .on_conflict(*spins, enemy, cm.shared(), &self.cm_tx, tid)
        };
        match verdict {
            SiteVerdict::Wait { kill } => {
                if kill {
                    if let Some(e) = enemy {
                        if e != tid && cm.shared().try_doom(e, tid as u16) {
                            self.rec.record(
                                self.rt.now(),
                                EventKind::CmKill {
                                    view: self.vid(),
                                    victim: e as u16,
                                    winner: tid as u16,
                                },
                            );
                        }
                    }
                }
                if *spins >= HARD_PATIENCE {
                    // Safety net: no policy verdict may turn into an
                    // unbounded wait. Past the hard cap the attempt aborts
                    // itself regardless of priority.
                    if busy {
                        self.set_abort_cause(AbortReason::WriteLockBusy, ConflictSite::None);
                    } else {
                        self.set_abort_cause(self.ctx.conflict_reason(), self.ctx.conflict_site());
                    }
                    return Err(TxAbort);
                }
                self.busy_wait().await;
                Ok(())
            }
            SiteVerdict::AbortSelf { backoff } => {
                self.cm_tx.loser_backoff = backoff;
                if busy {
                    self.set_abort_cause(AbortReason::WriteLockBusy, ConflictSite::None);
                } else {
                    self.set_abort_cause(self.ctx.conflict_reason(), self.ctx.conflict_site());
                }
                Err(TxAbort)
            }
        }
    }

    /// Transactional read of one word.
    pub async fn read(&mut self, addr: Addr) -> Result<u64, TxError> {
        let mut spins = 0u32;
        loop {
            match self.ctx.read(self.view.tm(), addr) {
                Ok(v) => {
                    self.read_summary |= 1u64 << bloom_bucket(addr);
                    self.note_access(addr, false);
                    self.charge_pending().await;
                    self.cm_doom_check()?;
                    self.fault_point().await?;
                    return Ok(v);
                }
                Err(e) => {
                    self.charge_pending().await;
                    self.cm_site(e, &mut spins).await?;
                }
            }
        }
    }

    /// Transactional write of one word.
    ///
    /// # Panics
    /// In a read-only transaction ([`View::transact_ro`]).
    pub async fn write(&mut self, addr: Addr, value: u64) -> Result<(), TxError> {
        assert!(
            !self.read_only,
            "write inside a read-only view acquisition (acquire_Rview)"
        );
        let mut spins = 0u32;
        loop {
            match self.ctx.write(self.view.tm(), addr, value) {
                Ok(()) => {
                    self.write_summary |= 1u64 << bloom_bucket(addr);
                    self.note_access(addr, true);
                    self.charge_pending().await;
                    self.cm_doom_check()?;
                    self.fault_point().await?;
                    return Ok(());
                }
                Err(e) => {
                    self.charge_pending().await;
                    self.cm_site(e, &mut spins).await?;
                }
            }
        }
    }

    /// Blocks the transaction: aborts this attempt and parks the task until
    /// another transaction commits a write intersecting this attempt's read
    /// set — Haskell STM's `retry`. Use it when the body finds the shared
    /// state unusable (queue empty, buffer full, flag unset): instead of
    /// committing a "nothing to do" result and polling, the task sleeps and
    /// is woken exactly when the world it read changes.
    ///
    /// The parked task holds no admission slot, so it never starves the
    /// view's quota; see the module docs' *Blocking* section for the
    /// protocol. Call as `return tx.retry();` (or `tx.retry()?` in a
    /// never-taken branch) — it merely constructs the [`TxError::Retry`]
    /// signal; the driver does the parking.
    pub fn retry<T>(&self) -> Result<T, TxError> {
        Err(TxError::Retry)
    }

    /// Composes two alternatives — Haskell STM's `orElse`: runs `first`,
    /// and if it blocks (returns [`TxError::Retry`]), runs `second` instead
    /// within the same transaction. Only if *both* block does the whole
    /// transaction park, keyed by the union of both alternatives' read
    /// sets, and a wakeup re-runs from `first` again. Any other error, and
    /// any `Ok`, propagates as-is. Nests freely.
    ///
    /// Because mid-attempt read/write-set rollback is not supported, a
    /// blocked `first` triggers an internal restart of the attempt (the
    /// driver re-runs the body, steering this call to `second`); bodies
    /// must therefore be as re-runnable as any transaction body already is.
    pub async fn or_else<T, FA, FB>(&mut self, mut first: FA, mut second: FB) -> Result<T, TxError>
    where
        FA: for<'h> AsyncFnMut(&'h mut TxHandle<'v>) -> Result<T, TxError>,
        FB: for<'h> AsyncFnMut(&'h mut TxHandle<'v>) -> Result<T, TxError>,
    {
        let idx = self.alt.cursor;
        self.alt.cursor += 1;
        if self.alt.decisions.len() <= idx {
            self.alt.decisions.push(false);
        }
        if !self.alt.decisions[idx] {
            match first(self).await {
                Err(TxError::Retry) if !self.alt.restart => {
                    // `first` blocked: flip to `second` and restart the
                    // attempt. Deeper decisions belong to the abandoned
                    // branch; drop them.
                    self.alt.decisions[idx] = true;
                    self.alt.decisions.truncate(idx + 1);
                    self.alt.restart = true;
                    Err(TxError::Retry)
                }
                other => other,
            }
        } else {
            match second(self).await {
                Err(TxError::Retry) if !self.alt.restart => {
                    // Both alternatives blocked: reset so the post-park
                    // re-run starts from `first`, and let the retry
                    // propagate to the driver's park (which keys on the
                    // accumulated union of both branches' reads).
                    self.alt.decisions[idx] = false;
                    self.alt.decisions.truncate(idx + 1);
                    Err(TxError::Retry)
                }
                other => other,
            }
        }
    }

    /// Performs thread-private work inside the transaction: `reads`/`writes`
    /// accesses to thread-local memory plus `nops` cycles of computation
    /// (Eigenbench's cold-array accesses and NOPi). Under the simulator this
    /// advances virtual time; under real threads it actually spins.
    pub async fn local_work(&mut self, reads: u64, writes: u64, nops: u64) {
        let cycles = (reads + writes) * cost::LOCAL_ACCESS + nops * cost::NOP;
        self.attempt_work += cycles;
        self.rt.work(cycles).await;
        self.fault_point_no_abort().await;
    }

    /// Allocates a block inside the transaction. The allocation is undone
    /// if this attempt aborts.
    ///
    /// On a full heap the view grows once via `brk_view` before giving up
    /// with [`TxError::HeapExhausted`] — propagating it with `?` retries
    /// the transaction, so callers that can make progress from other
    /// transactions' deferred frees simply re-run; match on the variant for
    /// a graceful out-of-memory path instead.
    pub fn alloc(&mut self, size_words: u32) -> Result<Addr, TxError> {
        let heap = self.view.tm().heap();
        let addr = heap.alloc_block(size_words).or_else(|| {
            // One growth attempt: extend the usable region by at least the
            // request (brk_view), then retry the carve.
            self.view.brk_view(size_words as usize)?;
            heap.alloc_block(size_words)
        });
        match addr {
            Some(addr) => {
                self.allocs.push(addr);
                Ok(addr)
            }
            None => Err(TxError::HeapExhausted {
                requested_words: size_words,
            }),
        }
    }

    /// Frees a block from inside the transaction. Deferred until commit so
    /// an abort cannot leak another transaction's data.
    pub fn free(&mut self, addr: Addr) {
        self.frees.push(addr);
    }

    /// The runtime handle (for nested timing/diagnostics in workloads).
    pub fn rt(&self) -> &Rt {
        &self.rt
    }

    /// Rolls back attempt-local state (allocation log).
    fn rollback_side_effects(&mut self) {
        for addr in self.allocs.drain(..).rev() {
            self.view.tm().heap().free_block(addr);
        }
        self.frees.clear();
    }

    /// Applies deferred side effects after a successful commit.
    fn apply_side_effects(&mut self) {
        self.allocs.clear();
        for addr in self.frees.drain(..) {
            self.view.tm().heap().free_block(addr);
        }
    }

    /// Books a committed attempt: commit counter, commit-latency histogram
    /// and the trace event, so the three can never disagree.
    fn book_commit(&self, cycles: u64) {
        self.view
            .tm()
            .stats()
            .record_commit(self.rt.thread_index(), cycles);
        self.view.hists().commit.record(cycles);
        self.rec.record(
            self.rt.now(),
            EventKind::TxCommit {
                view: self.vid(),
                cycles,
            },
        );
        self.record_footprint(true);
    }

    /// Books an aborted attempt under its structured reason.
    fn book_abort(&self, cycles: u64) {
        self.view
            .tm()
            .stats()
            .record_abort(self.rt.thread_index(), cycles, self.abort_reason);
        self.rec.record(
            self.rt.now(),
            EventKind::TxAbort {
                view: self.vid(),
                reason: self.abort_reason,
                cycles,
            },
        );
        // Exactly one ConflictDetected per abort, carrying the same cycle
        // count, so per-bucket wasted cycles sum to the abort total.
        let (bucket, site, raw) = match self.conflict_site {
            ConflictSite::None => (ADDR_BUCKET_NONE, ConflictSiteKind::None, 0),
            ConflictSite::Addr(a) => (
                addr_bucket(u64::from(a.0), self.cap_words),
                ConflictSiteKind::Addr,
                u64::from(a.0),
            ),
            // An orec index is a hash, not an address: no bucket for it.
            ConflictSite::Orec(idx) => (ADDR_BUCKET_NONE, ConflictSiteKind::Orec, u64::from(idx)),
            ConflictSite::Bloom(a, b) => (
                addr_bucket(u64::from(a.0), self.cap_words),
                ConflictSiteKind::Bloom,
                u64::from(b),
            ),
        };
        self.rec.record(
            self.rt.now(),
            EventKind::ConflictDetected {
                view: self.vid(),
                addr_bucket: bucket,
                kind: self.abort_reason,
                site,
                cycles,
                raw,
            },
        );
        self.record_footprint(false);
    }

    /// Emits the attempt's footprint bitmaps (when it touched anything).
    fn record_footprint(&self, committed: bool) {
        if self.fp_reads | self.fp_writes != 0 {
            self.rec.record(
                self.rt.now(),
                EventKind::Footprint {
                    view: self.vid(),
                    committed,
                    reads: self.fp_reads,
                    writes: self.fp_writes,
                },
            );
        }
    }

    /// Pokes the adaptive controller; when it adjusts the quota, puts the
    /// decision (with the δ(Q) sample behind it) on the trace timeline.
    fn poke_controller(&self) {
        if let Some(ctrl) = self.view.controller() {
            if let Some(d) = ctrl.on_tx_end_decision(self.view.gate(), self.view.tm().stats()) {
                self.rec.record(
                    self.rt.now(),
                    EventKind::QuotaChange {
                        view: self.vid(),
                        old_q: d.old_q as u16,
                        new_q: d.new_q as u16,
                        delta: d.delta,
                    },
                );
            }
        }
    }

    /// Closes out the attempt on the normal (non-unwind) path: applies or
    /// rolls back side effects, books the attempt's cycles, and pokes the
    /// adaptive controller. Disarms the drop guard.
    fn finish(&mut self, committed: bool) {
        self.finished = true;
        // Simulator: the work-unit ledger *is* the cycle count. Real
        // threads: the hardware timestamp delta, like the paper's rdtsc().
        let cycles = if self.rt.is_virtual() {
            std::mem::take(&mut self.attempt_work)
        } else {
            self.attempt_work = 0;
            self.rt.now().saturating_sub(self.start)
        };
        if committed {
            self.apply_side_effects();
            self.book_commit(cycles);
        } else {
            self.rollback_side_effects();
            self.book_abort(cycles);
        }
        self.poke_controller();
    }
}

impl Drop for TxHandle<'_> {
    /// Unwind recovery. On the normal path [`Self::finish`] has already
    /// run and this is a no-op; otherwise the attempt is being abandoned by
    /// a panic and must be unwound to a consistent view state:
    ///
    /// * **mid-commit** (writeback published, commit metadata held): finish
    ///   the commit. The data is already in the heap; releasing the NOrec
    ///   seqlock / orec locks at the commit timestamp is the only exit that
    ///   doesn't strand them or tear the writeback.
    /// * **live transaction**: abort it (restores orec ownership, discards
    ///   buffered writes), roll back attempt-local allocations, book the
    ///   cycles as aborted.
    /// * **direct (lock-mode)**: nothing can be rolled back — the paper's
    ///   irrevocable mode writes straight to the heap. Allocation logs are
    ///   dropped without freeing (a block may already be reachable from
    ///   published state; leaking is safe, freeing could corrupt).
    fn drop(&mut self) {
        if self.finished {
            return;
        }
        self.attempt_work += self.ctx.take_work();
        if self.ctx.mid_commit() {
            self.ctx.commit_finish(self.view.tm());
            self.attempt_work += self.ctx.take_work();
            self.apply_side_effects();
            self.book_commit(self.attempt_work);
        } else if self.ctx.is_direct() {
            self.allocs.clear();
            self.frees.clear();
            self.book_abort(self.attempt_work);
        } else {
            if self.ctx.is_active() {
                self.ctx.abort(self.view.tm());
                self.attempt_work += self.ctx.take_work();
            }
            self.rollback_side_effects();
            self.book_abort(self.attempt_work);
        }
        self.attempt_work = 0;
        self.poke_controller();
    }
}

/// Runs `body` transactionally against `view` until an attempt commits.
pub(crate) async fn drive_transaction<'v, T, F>(
    view: &'v View,
    rt: &Rt,
    read_only: bool,
    mut body: F,
) -> T
where
    F: for<'h> AsyncFnMut(&'h mut TxHandle<'_>) -> Result<T, TxError>,
{
    let unrestricted = view.is_unrestricted();
    let rec = view.recorder_handle(rt.thread_index());
    let vid = view.id() as u16;
    let cm = view.cm();
    // Contention-management state of the *logical* transaction: it survives
    // attempts, so abort-the-younger's timestamp only ages and Karma's
    // account accumulates across aborts.
    let mut cm_tx = CmTx::new(rt.now());
    // Consecutive aborts of *this* transaction — the starvation signal.
    let mut streak: u64 = 0;
    // When the previous attempt aborted: its end timestamp, for the
    // abort-to-retry latency histogram.
    let mut last_abort_at: Option<u64> = None;
    // `or_else` alternative selection, persisted across the immediate
    // restarts that steer a re-run to the next alternative.
    let mut alt = AltCtl::default();
    // Union of the read-set summaries of every alternative tried since the
    // last park / non-retry abort — the park's wakeup key.
    let mut retry_accum: u64 = 0;
    // Wait-table epoch snapshot from the *first* attempt of the current
    // retry group: parking validates against the earliest snapshot, so a
    // commit landing between alternatives is never slept through.
    let mut group_epoch: Option<u64> = None;
    loop {
        // acquire_view: RAC admission (skipped for the no-RAC baselines).
        // Admission is held as an RAII guard; dropping it (normally or
        // during an unwind) is what releases the gate.
        let gate_guard = if unrestricted {
            None
        } else {
            let escalate = view
                .escalate_after()
                .is_some_and(|k| streak >= u64::from(k));
            let wait_from = rt.now();
            let guard = if escalate {
                // Max-retry escalation: drain the view and run alone in
                // the irrevocable lock mode, which cannot abort.
                view.tm().stats().record_escalation(rt.thread_index());
                rec.record(wait_from, EventKind::Escalation { view: vid });
                // Settle any banked (epoch-elided) clock bumps before the
                // drain: direct mode bypasses clock bookkeeping, and the
                // transactions about to be drained must observe a clock
                // that accounts for every commit that already landed.
                view.tm().clock_flush();
                view.gate().acquire_exclusive(rt).await
            } else {
                view.gate().admit(rt).await
            };
            let waited = rt.now().saturating_sub(wait_from);
            view.hists().gate_wait.record(waited);
            if waited > 0 {
                view.tm()
                    .stats()
                    .record_gate_wait(rt.thread_index(), waited);
                rec.record(wait_from, EventKind::GateWaitEnter { view: vid });
                rec.record(rt.now(), EventKind::GateWaitExit { view: vid, waited });
            }
            Some(guard)
        };
        let mode = gate_guard
            .as_ref()
            .map_or(AdmissionMode::Transactional, |g| g.mode());

        // Snapshot the wait-table epoch *before* the attempt reads
        // anything: a commit that lands from here on bumps the epoch, so a
        // later park detects it (SkippedStale) instead of sleeping through
        // it. Free when nothing blocks: one relaxed atomic load.
        let begin_epoch = view.waits().epoch();
        if group_epoch.is_none() {
            group_epoch = Some(begin_epoch);
        }
        alt.begin_attempt();

        // Declared after the guard: unwinds run transaction recovery
        // (TxHandle::drop) before admission release (GateGuard::drop).
        let mut handle = TxHandle::new(
            view,
            rt.clone(),
            mode,
            read_only,
            cm_tx,
            std::mem::take(&mut alt),
        );

        // begin (NOrec can be Busy while a committer holds the seqlock).
        loop {
            match handle.ctx.begin(view.tm()) {
                Ok(()) => break,
                Err(OpError::Busy) => {
                    handle.charge_pending().await;
                    handle.busy_wait().await;
                }
                Err(OpError::Conflict) => unreachable!("begin never conflicts"),
            }
        }
        handle.charge_pending().await;
        rec.record(rt.now(), EventKind::TxBegin { view: vid });
        if let Some(aborted_at) = last_abort_at.take() {
            view.hists()
                .abort_to_retry
                .record(rt.now().saturating_sub(aborted_at));
        }

        let outcome = body(&mut handle).await;

        let mut is_retry = false;
        let committed = match outcome {
            Ok(value) => {
                // Capture the wakeup key now: the commit machinery below
                // drains the write set. Context summary for transactional
                // modes, handle summary for direct (lock-mode) attempts.
                let wake_summary = handle.ctx.write_summary() | handle.write_summary;
                // release_view step 1: try to commit.
                let mut commit_spins = 0u32;
                let committed = loop {
                    match handle.ctx.commit_begin(view.tm()) {
                        Ok(CommitPhase::Done) => break true,
                        Ok(CommitPhase::NeedsFinish { .. }) => {
                            // Hold the commit locks across the writeback
                            // window so concurrent transactions observe it.
                            // This is also the pipeline's mid-commit
                            // interleaving (and injected-panic) point: an
                            // unwind here is recovered by finishing the
                            // commit in the drop guard.
                            handle.charge_pending().await;
                            handle.fault_point_no_abort().await;
                            handle.ctx.commit_finish(view.tm());
                            break true;
                        }
                        Err(OpError::Busy) => {
                            // A failed commit_begin holds no locks, so the
                            // CM site logic applies here too; the passive
                            // default waits out the committer unbounded
                            // (the seqlock holder finishes in bounded
                            // time), exactly as before.
                            handle.charge_pending().await;
                            if handle.cm_active {
                                if handle
                                    .cm_site(OpError::Busy, &mut commit_spins)
                                    .await
                                    .is_err()
                                {
                                    break false;
                                }
                            } else {
                                handle.busy_wait().await;
                            }
                        }
                        Err(OpError::Conflict) => {
                            if handle.cm_active {
                                // Lazy acquisition released its locks
                                // before returning Conflict, so a Wait
                                // verdict may retry commit_begin whole.
                                handle.charge_pending().await;
                                if handle
                                    .cm_site(OpError::Conflict, &mut commit_spins)
                                    .await
                                    .is_err()
                                {
                                    break false;
                                }
                            } else {
                                handle.set_abort_cause(
                                    handle.ctx.conflict_reason(),
                                    handle.ctx.conflict_site(),
                                );
                                break false;
                            }
                        }
                    }
                };
                if committed {
                    handle.charge_pending().await;
                    handle.finish(true);
                    drop(handle);
                    drop(gate_guard);
                    // Publication: stamp the bucket epochs and wake parked
                    // transactions whose read sets intersect this commit's
                    // writes. Zero virtual cost, no RNG — write-free runs
                    // take the `summary == 0` early-out and stay
                    // bit-identical to the pre-blocking traces.
                    if wake_summary != 0 {
                        view.waits().publish(wake_summary);
                    }
                    return value;
                }
                false
            }
            Err(TxError::Retry) => {
                is_retry = true;
                false
            }
            Err(_) => false,
        };
        debug_assert!(!committed);

        if is_retry {
            // retry(): the body declared "nothing I read lets me proceed".
            // Roll back and park instead of racing. The attempt is booked
            // under AbortReason::Retry (a requested wait, not contention),
            // and deliberately skips the contention manager's on_aborted /
            // loser backoff and the starvation streak.
            if handle.ctx.is_direct() {
                // The irrevocable lock mode cannot roll anything back; a
                // retry there is only sound if the attempt was effectively
                // read-only.
                assert!(
                    handle.write_summary == 0
                        && handle.allocs.is_empty()
                        && handle.frees.is_empty(),
                    "retry() in an escalated (exclusive lock-mode) attempt \
                     requires a read-only body: irrevocable writes cannot be \
                     rolled back"
                );
            } else {
                handle.ctx.abort(view.tm());
            }
            handle.charge_pending().await;
            handle.set_abort_cause(AbortReason::Retry, ConflictSite::None);
            retry_accum |= handle.read_summary;
            handle.finish(false);
            cm_tx = handle.cm_tx;
            alt = std::mem::take(&mut handle.alt);
            drop(handle);
            // Quota-release-on-park: admission drops *before* the park, so
            // a sleeping transaction never occupies a gate slot another
            // transaction (possibly its would-be waker) could use.
            drop(gate_guard);
            if alt.restart {
                // An or_else alternative flipped: re-run immediately to
                // try the other branch; no park yet.
                last_abort_at = Some(rt.now());
                continue;
            }
            // Every alternative blocked: park on the union of their read
            // sets. An empty union (the body read nothing before retrying)
            // parks on every bucket — only *some* commit can change its
            // world.
            let key = if retry_accum == 0 {
                u64::MAX
            } else {
                retry_accum
            };
            let epoch0 = group_epoch.take().unwrap_or(begin_epoch);
            retry_accum = 0;
            rec.record(
                rt.now(),
                EventKind::Park {
                    view: vid,
                    summary: key,
                },
            );
            let parked_at = rt.now();
            let park_outcome = view.waits().park(rt, key, epoch0, PARK_TIMEOUT).await;
            let waited = rt.now().saturating_sub(parked_at);
            view.hists().parked_wait.record(waited);
            view.tm().stats().record_parked_wait(rt.thread_index());
            match park_outcome {
                ParkOutcome::Woken | ParkOutcome::SkippedStale => {
                    rec.record(rt.now(), EventKind::Wake { view: vid, waited });
                }
                ParkOutcome::TimedOut => {
                    // The wakeup never came (writer bug, or a workload
                    // where nothing ever commits here). Surface it on the
                    // trace and the counters, then fall back to an
                    // ordinary re-run; repeated timeouts bump the
                    // starvation streak so the watchdog escalates instead
                    // of the task hanging silently.
                    view.tm().stats().record_lost_wakeup(rt.thread_index());
                    rec.record(rt.now(), EventKind::LostWakeup { view: vid, waited });
                    streak += 1;
                    view.tm()
                        .stats()
                        .record_abort_streak(rt.thread_index(), streak);
                }
            }
            last_abort_at = Some(rt.now());
            continue;
        }

        // Abort: roll back, decrease P, reacquire (paper release step 1).
        assert!(
            !handle.ctx.is_direct(),
            "lock-mode (exclusive) sections cannot abort"
        );
        handle.ctx.abort(view.tm());
        handle.charge_pending().await;
        let wasted = handle.attempt_work;
        handle.finish(false);
        cm_tx = handle.cm_tx;
        drop(handle);
        drop(gate_guard);
        last_abort_at = Some(rt.now());
        // A non-retry abort dissolves the retry group: the world changed
        // under us, so the next retry (if any) starts a fresh read-set
        // union, epoch snapshot, and alternative selection.
        retry_accum = 0;
        group_epoch = None;
        alt = AltCtl::default();

        if cm.active() {
            // Bank the wasted work (Karma's account) and serve the loser's
            // backoff penalty *after* releasing admission, so the freed
            // gate slot can go to the conflict's winner meanwhile — the
            // CM ↔ quota interaction.
            cm.manager().on_aborted(&mut cm_tx, wasted);
            let penalty = std::mem::take(&mut cm_tx.loser_backoff);
            if penalty > 0 {
                rt.charge(penalty).await;
            }
        }

        streak += 1;
        view.tm()
            .stats()
            .record_abort_streak(rt.thread_index(), streak);
        // Loop back to reacquire admission and re-run the body.
    }
}
