//! Pluggable contention management.
//!
//! The paper's RAC quota is a *population* control: it bounds how many
//! transactions contend at once, but says nothing about **which** of two
//! conflicting transactions should yield. That decision — the contention
//! manager — was hard-wired to backoff-and-retry. This module makes it a
//! policy point: a [`ContentionManager`] trait consulted by the
//! transaction driver at every conflict-resolution site (orec acquisition
//! conflicts, NOrec validation failures, busy spins on foreign locks, and
//! the pre-re-admission backoff at the gate), plus the shared per-view
//! state ([`CmShared`]) the priority policies communicate through.
//!
//! Five policies ship:
//!
//! * [`CmPolicy::Backoff`] — the historical default, bit-for-bit: spin up
//!   to [`BUSY_PATIENCE`] on `Busy`, abort-self on `Conflict`, no shared
//!   state touched. Zero overhead; no progress guarantee beyond RAC's.
//! * [`CmPolicy::AbortTheYounger`] — timestamp priority (pypy stmgc's
//!   `contention.c` policy): the transaction with the older first-attempt
//!   timestamp wins every conflict. A transaction keeps its timestamp
//!   across aborts, so it only ever ages; the globally oldest transaction
//!   wins every conflict it is part of and therefore commits — livelock-
//!   free by construction, and starvation-free because every transaction
//!   eventually *becomes* the oldest.
//! * [`CmPolicy::Karma`] — work-accounting priority: each abort banks the
//!   wasted cycles as karma, and accumulated karma wins conflicts. A long
//!   transaction that keeps losing accumulates karma proportional to its
//!   length and eventually outranks any stream of short transactions; the
//!   bound on its abort streak is O(victim length / short length).
//! * [`CmPolicy::WaitVsAbort`] — never kills: a transaction that hits a
//!   foreign lock waits it out with extended patience instead of aborting
//!   itself or dooming the holder. Deadlock-free (patience is bounded),
//!   but starvation-prone under adversarial schedules — included as the
//!   conservative contrast point.
//! * [`CmPolicy::WindowedGreedy`] — randomized-interval priorities after
//!   Sharma, Estrade & Busch: virtual time is divided into windows and
//!   each transaction draws a pseudo-random priority per window. Within a
//!   window the top-priority transaction wins everything (greedy), and
//!   re-randomization across windows gives every starving transaction a
//!   fresh chance — O(s)-competitive makespan for s shared objects.
//!
//! Priorities are `u64` values where **lower wins**, with the thread index
//! as tie-breaker, so `(priority, tid)` is a total order: for any two
//! transactions exactly one side wins, which is what rules out the
//! mutual-kill and mutual-wait cycles of symmetric policies.
//!
//! Killing is *polite*: the winner dooms the victim's [`CmShared`] slot
//! (an epoch-guarded CAS) and keeps waiting for the lock; the victim
//! observes the mark at its next operation boundary and aborts itself with
//! `AbortReason::CmKilled`, releasing its locks through the normal abort
//! path. STM metadata is never mutated behind the victim's back.

use std::sync::atomic::{AtomicU64, Ordering};

use votm_utils::{hash_u64, CachePadded};

/// Busy-spin patience of the default backoff policy before converting the
/// spin into an abort (the historical `BUSY_ABORT_LIMIT`).
pub const BUSY_PATIENCE: u32 = 64;

/// Extended patience of the wait-vs-abort policy on `Busy` sites.
pub const WAIT_PATIENCE: u32 = 512;

/// Hard per-operation cap on *any* wait the driver honours, winner or not.
/// A safety net: no policy decision can convert a lost wakeup or a
/// pathological wait chain into a hang — past this many spins the
/// transaction aborts itself regardless of priority.
pub const HARD_PATIENCE: u32 = 4096;

/// log2 of the windowed-greedy window length in cycles (2^17 ≈ 131k cycles
/// ≈ 52 µs at the simulator's 2.5 GHz cost model) — several times a long
/// transaction, so a window winner can finish inside its window.
pub const GREEDY_WINDOW_BITS: u32 = 17;

/// Base of the loser's exponential pre-re-admission backoff, in cycles.
pub const LOSER_BACKOFF_BASE: u64 = 256;

/// The shipped contention-management policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CmPolicy {
    /// Backoff-and-retry: the historical hard-wired behaviour.
    #[default]
    Backoff,
    /// Older first-attempt timestamp wins (livelock- and starvation-free).
    AbortTheYounger,
    /// Accumulated wasted work wins (long transactions earn priority).
    Karma,
    /// Wait out foreign locks with extended patience; never kill.
    WaitVsAbort,
    /// Per-window randomized priorities (Sharma et al., O(s)-competitive).
    WindowedGreedy,
}

impl CmPolicy {
    /// All policies, in a stable order (the default first).
    pub const ALL: [CmPolicy; 5] = [
        CmPolicy::Backoff,
        CmPolicy::AbortTheYounger,
        CmPolicy::Karma,
        CmPolicy::WaitVsAbort,
        CmPolicy::WindowedGreedy,
    ];

    /// Short stable name used in reports, JSON rows and CLI arguments.
    pub fn name(self) -> &'static str {
        match self {
            CmPolicy::Backoff => "backoff",
            CmPolicy::AbortTheYounger => "abort-younger",
            CmPolicy::Karma => "karma",
            CmPolicy::WaitVsAbort => "wait-vs-abort",
            CmPolicy::WindowedGreedy => "windowed-greedy",
        }
    }

    /// Inverse of [`CmPolicy::name`].
    pub fn from_name(name: &str) -> Option<CmPolicy> {
        CmPolicy::ALL.iter().copied().find(|p| p.name() == name)
    }
}

/// Per-transaction contention-management state, owned by the transaction
/// driver and persisted **across attempts** of one logical transaction
/// (that persistence is what makes abort-the-younger's timestamp and
/// Karma's account survive aborts). Cheap `Copy` so the driver can thread
/// it through per-attempt handles.
#[derive(Debug, Clone, Copy)]
pub struct CmTx {
    /// Priority published for the current attempt (lower wins).
    pub prio: u64,
    /// Cycles wasted in aborted attempts of this transaction so far.
    pub karma: u64,
    /// Timestamp of the transaction's *first* attempt.
    pub tx_start: u64,
    /// Aborted attempts so far (drives the loser backoff exponent).
    pub attempts: u32,
    /// The [`CmShared`] slot epoch of the current attempt.
    pub epoch: u32,
    /// Backoff (cycles) to charge before the next re-admission, set when a
    /// site verdict was `AbortSelf` with a non-zero penalty.
    pub loser_backoff: u64,
}

impl CmTx {
    /// State for a logical transaction starting at `now`.
    pub fn new(now: u64) -> Self {
        Self {
            prio: 0,
            karma: 0,
            tx_start: now,
            attempts: 0,
            epoch: 0,
            loser_backoff: 0,
        }
    }

    /// The backoff a yielding loser owes before re-admission: exponential
    /// in its aborted attempts, capped. Used both for `AbortSelf` verdicts
    /// and for `CmKilled` aborts — a killed transaction that re-armed
    /// immediately would counter-kill the winner before it commits (under
    /// Karma the kill itself banks enough karma to outrank the killer),
    /// ping-ponging forever. The cap exceeds a typical short transaction,
    /// so the winner's window to commit is real.
    pub fn yield_backoff(&self) -> u64 {
        LOSER_BACKOFF_BASE << self.attempts.min(4)
    }
}

/// What the contention manager tells the driver to do at a `Busy` or
/// `Conflict` site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteVerdict {
    /// Stay at the operation: busy-wait once and retry it. With
    /// `kill: true` the driver first dooms the conflicting transaction's
    /// [`CmShared`] slot so the road clears.
    Wait {
        /// Doom the enemy before waiting.
        kill: bool,
    },
    /// Abort this attempt; the driver charges `backoff` virtual cycles
    /// before re-admission so the winner can finish.
    AbortSelf {
        /// Pre-re-admission penalty in cycles (0 = none).
        backoff: u64,
    },
}

const DOOM_BIT: u64 = 1 << 32;

/// One thread's contention slot: the epoch/doom word and the published
/// priority, alone on their cache line.
#[derive(Debug, Default)]
struct CmSlot {
    /// Bits 0..32: attempt epoch (bumped by the owner at attempt begin,
    /// which also clears any doom). Bit 32: doomed. Bits 33..49: winner's
    /// thread index, valid while doomed.
    state: AtomicU64,
    /// The owner's published priority for the current attempt.
    prio: AtomicU64,
}

/// Shared per-view contention state: one [`CmSlot`] per thread. The slots
/// are the only channel the priority policies communicate through — STM
/// metadata stays untouched.
#[derive(Debug)]
pub struct CmShared {
    slots: Box<[CachePadded<CmSlot>]>,
}

impl CmShared {
    /// Slots for `n_threads` participants (at least one).
    pub fn new(n_threads: u32) -> Self {
        let n = n_threads.max(1) as usize;
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || CachePadded::new(CmSlot::default()));
        Self {
            slots: v.into_boxed_slice(),
        }
    }

    #[inline]
    fn slot(&self, tid: usize) -> &CmSlot {
        &self.slots[tid % self.slots.len()]
    }

    /// Starts a new attempt for `tid`: bumps the slot epoch (atomically
    /// clearing any doom aimed at the previous attempt) and publishes
    /// `prio`. Returns the new epoch.
    pub fn attempt_begin(&self, tid: usize, prio: u64) -> u32 {
        let s = self.slot(tid);
        s.prio.store(prio, Ordering::Release);
        let cur = s.state.load(Ordering::Relaxed);
        let epoch = (cur as u32).wrapping_add(1);
        s.state.store(u64::from(epoch), Ordering::Release);
        epoch
    }

    /// `Some(winner)` if `tid`'s attempt with `epoch` has been doomed.
    #[inline]
    pub fn doomed_by(&self, tid: usize, epoch: u32) -> Option<u16> {
        let w = self.slot(tid).state.load(Ordering::Acquire);
        (w as u32 == epoch && w & DOOM_BIT != 0).then_some(((w >> 33) & 0xffff) as u16)
    }

    /// Attempts to doom `victim`'s *current* attempt on behalf of
    /// `winner`. Epoch-guarded: if the victim moved on to a new attempt
    /// between our load and the CAS, the doom does not land. Returns true
    /// only on the doomed-bit transition, so the caller can record exactly
    /// one kill event per doomed attempt.
    pub fn try_doom(&self, victim: usize, winner: u16) -> bool {
        let s = self.slot(victim);
        let cur = s.state.load(Ordering::Acquire);
        if cur & DOOM_BIT != 0 {
            return false; // already doomed by someone
        }
        let next = cur | DOOM_BIT | (u64::from(winner) << 33);
        s.state
            .compare_exchange(cur, next, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// The priority `tid` published for its current attempt.
    #[inline]
    pub fn prio_of(&self, tid: usize) -> u64 {
        self.slot(tid).prio.load(Ordering::Acquire)
    }
}

/// Does `(my_prio, my_tid)` beat `(their_prio, their_tid)`? Lower wins;
/// the thread index breaks ties, making the order total — for any two
/// transactions exactly one side wins, so symmetric kill/wait cycles are
/// impossible.
#[inline]
pub fn beats(my_prio: u64, my_tid: usize, their_prio: u64, their_tid: usize) -> bool {
    (my_prio, my_tid) < (their_prio, their_tid)
}

/// The policy point: consulted by the transaction driver at every
/// conflict-resolution site. Implementations must be deterministic
/// functions of their arguments (plus construction-time seeds) — the
/// same-seed replay guarantee of the simulator extends through them.
pub trait ContentionManager: Send + Sync + std::fmt::Debug {
    /// Which shipped policy this manager implements.
    fn policy(&self) -> CmPolicy;

    /// True when the manager needs no priority publication and no doom
    /// checks; the driver then skips all CM work on the hot path.
    fn is_passive(&self) -> bool {
        false
    }

    /// The priority to publish for an attempt beginning at `now` (lower
    /// wins; see [`beats`]).
    fn priority(&self, tx: &CmTx, tid: usize, now: u64) -> u64;

    /// Verdict for the `spins`-th consecutive `Busy` poll of one
    /// operation (spinning on `enemy`'s lock when the identity is known).
    fn on_busy(
        &self,
        spins: u32,
        enemy: Option<usize>,
        shared: &CmShared,
        tx: &CmTx,
        tid: usize,
    ) -> SiteVerdict;

    /// Verdict for an `Err(Conflict)` from the STM. `AbortSelf` follows
    /// the STM contract (the attempt restarts); `Wait` is only sound when
    /// the conflict is an encounter-time foreign lock (`enemy` is
    /// `Some`), where the operation is retryable once the holder leaves.
    fn on_conflict(
        &self,
        spins: u32,
        enemy: Option<usize>,
        shared: &CmShared,
        tx: &CmTx,
        tid: usize,
    ) -> SiteVerdict;

    /// The attempt aborted after wasting `wasted` cycles: bank karma and
    /// count the attempt. Called for every abort, whatever the cause.
    fn on_aborted(&self, tx: &mut CmTx, wasted: u64) {
        tx.karma = tx.karma.saturating_add(wasted);
        tx.attempts = tx.attempts.saturating_add(1);
    }

    /// Verdict for a *false conflict* — a coarse-granularity clock abort
    /// where no enemy transaction exists (the conflicting commit may have
    /// finished before this attempt began). There is nobody to doom and
    /// nobody to wait for, and the STM's rescue bump already guarantees
    /// the retry's progress, so the default restarts immediately with no
    /// backoff; policies may override to charge one anyway.
    fn on_false_conflict(&self, _tx: &CmTx) -> SiteVerdict {
        SiteVerdict::AbortSelf { backoff: 0 }
    }
}

/// Exponential loser backoff: 256 cycles doubling with each lost attempt,
/// capped at 4096 — enough for a short winner to finish, small against
/// the gate-wait latencies RAC already imposes.
fn loser_backoff(tx: &CmTx) -> u64 {
    tx.yield_backoff()
}

/// Shared site logic of the three priority policies (abort-the-younger,
/// Karma, windowed-greedy): win ⇒ doom the enemy and wait it out; lose ⇒
/// yield (keep spinning briefly on `Busy`, abort with backoff otherwise).
fn priority_site(
    busy: bool,
    spins: u32,
    enemy: Option<usize>,
    shared: &CmShared,
    tx: &CmTx,
    tid: usize,
) -> SiteVerdict {
    if let Some(e) = enemy {
        if e != tid && beats(tx.prio, tid, shared.prio_of(e), e) {
            return SiteVerdict::Wait { kill: true };
        }
        if busy && spins < BUSY_PATIENCE {
            return SiteVerdict::Wait { kill: false };
        }
        return SiteVerdict::AbortSelf {
            backoff: loser_backoff(tx),
        };
    }
    // Anonymous conflict (version advance, lost CAS, NOrec validation):
    // nobody to outrank; fall back to the default shape.
    if busy && spins < BUSY_PATIENCE {
        SiteVerdict::Wait { kill: false }
    } else {
        SiteVerdict::AbortSelf { backoff: 0 }
    }
}

/// The historical default: bounded spin on `Busy`, abort-self on
/// `Conflict`, no shared state. Passive — the driver reproduces the
/// pre-CM hot path exactly under this manager.
#[derive(Debug, Default)]
pub struct BackoffCm;

impl ContentionManager for BackoffCm {
    fn policy(&self) -> CmPolicy {
        CmPolicy::Backoff
    }

    fn is_passive(&self) -> bool {
        true
    }

    fn priority(&self, _tx: &CmTx, _tid: usize, _now: u64) -> u64 {
        0
    }

    fn on_busy(
        &self,
        spins: u32,
        _enemy: Option<usize>,
        _shared: &CmShared,
        _tx: &CmTx,
        _tid: usize,
    ) -> SiteVerdict {
        if spins < BUSY_PATIENCE {
            SiteVerdict::Wait { kill: false }
        } else {
            SiteVerdict::AbortSelf { backoff: 0 }
        }
    }

    fn on_conflict(
        &self,
        _spins: u32,
        _enemy: Option<usize>,
        _shared: &CmShared,
        _tx: &CmTx,
        _tid: usize,
    ) -> SiteVerdict {
        SiteVerdict::AbortSelf { backoff: 0 }
    }
}

/// Timestamp priority: the first-attempt timestamp *is* the priority, and
/// it never changes, so a transaction only ages. Livelock-free: the
/// oldest transaction in any conflict set wins all its conflicts and
/// commits. Starvation-free: every transaction eventually becomes oldest.
#[derive(Debug, Default)]
pub struct AbortTheYoungerCm;

impl ContentionManager for AbortTheYoungerCm {
    fn policy(&self) -> CmPolicy {
        CmPolicy::AbortTheYounger
    }

    fn priority(&self, tx: &CmTx, _tid: usize, _now: u64) -> u64 {
        tx.tx_start
    }

    fn on_busy(
        &self,
        spins: u32,
        enemy: Option<usize>,
        shared: &CmShared,
        tx: &CmTx,
        tid: usize,
    ) -> SiteVerdict {
        priority_site(true, spins, enemy, shared, tx, tid)
    }

    fn on_conflict(
        &self,
        spins: u32,
        enemy: Option<usize>,
        shared: &CmShared,
        tx: &CmTx,
        tid: usize,
    ) -> SiteVerdict {
        priority_site(false, spins, enemy, shared, tx, tid)
    }
}

/// Work-accounting priority: every aborted attempt banks its wasted
/// cycles, and the bigger account wins. A repeatedly-victimised long
/// transaction accumulates karma proportional to its own length per loss,
/// so after O(len_victim / len_short) losses it outranks any short
/// transaction — the abort streak is bounded by the work ratio. The
/// account resets on commit (the state is per logical transaction).
#[derive(Debug, Default)]
pub struct KarmaCm;

impl ContentionManager for KarmaCm {
    fn policy(&self) -> CmPolicy {
        CmPolicy::Karma
    }

    fn priority(&self, tx: &CmTx, _tid: usize, _now: u64) -> u64 {
        // Lower wins: invert the account.
        u64::MAX - tx.karma
    }

    fn on_busy(
        &self,
        spins: u32,
        enemy: Option<usize>,
        shared: &CmShared,
        tx: &CmTx,
        tid: usize,
    ) -> SiteVerdict {
        priority_site(true, spins, enemy, shared, tx, tid)
    }

    fn on_conflict(
        &self,
        spins: u32,
        enemy: Option<usize>,
        shared: &CmShared,
        tx: &CmTx,
        tid: usize,
    ) -> SiteVerdict {
        priority_site(false, spins, enemy, shared, tx, tid)
    }
}

/// Never kill, never panic-abort early: wait out foreign lock holders
/// with extended patience ([`WAIT_PATIENCE`] on `Busy`, a short bounded
/// wait on retryable conflicts). Deadlock-free because all patience is
/// bounded; makes no starvation promise — it is the conservative contrast
/// point for the priority policies.
#[derive(Debug, Default)]
pub struct WaitVsAbortCm;

/// How long wait-vs-abort re-polls a *conflict* site (an encounter-time
/// foreign lock) before giving up and aborting itself.
const CONFLICT_WAIT: u32 = 16;

impl ContentionManager for WaitVsAbortCm {
    fn policy(&self) -> CmPolicy {
        CmPolicy::WaitVsAbort
    }

    fn priority(&self, _tx: &CmTx, _tid: usize, _now: u64) -> u64 {
        // Published but never used to kill; lowest priority for everyone.
        u64::MAX
    }

    fn on_busy(
        &self,
        spins: u32,
        enemy: Option<usize>,
        _shared: &CmShared,
        _tx: &CmTx,
        _tid: usize,
    ) -> SiteVerdict {
        let patience = if enemy.is_some() {
            WAIT_PATIENCE
        } else {
            BUSY_PATIENCE
        };
        if spins < patience {
            SiteVerdict::Wait { kill: false }
        } else {
            SiteVerdict::AbortSelf { backoff: 0 }
        }
    }

    fn on_conflict(
        &self,
        spins: u32,
        enemy: Option<usize>,
        _shared: &CmShared,
        _tx: &CmTx,
        _tid: usize,
    ) -> SiteVerdict {
        if enemy.is_some() && spins < CONFLICT_WAIT {
            // The writer waits briefly for the holder instead of killing
            // it or immediately killing itself.
            SiteVerdict::Wait { kill: false }
        } else {
            SiteVerdict::AbortSelf { backoff: 0 }
        }
    }
}

/// Randomized-interval priorities (Sharma, Estrade & Busch): virtual time
/// is cut into windows of 2^[`GREEDY_WINDOW_BITS`] cycles and each
/// transaction hashes `(seed, window, tid)` into its priority for that
/// window. Within a window the winner is greedy (kills everyone); across
/// windows the draw re-randomizes, so a loser's expected wait is O(#rivals)
/// windows — the O(s)-competitive schedule of the paper.
#[derive(Debug)]
pub struct WindowedGreedyCm {
    seed: u64,
    window_bits: u32,
}

impl WindowedGreedyCm {
    /// Manager with the given draw seed and the default window length.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            window_bits: GREEDY_WINDOW_BITS,
        }
    }

    #[inline]
    fn draw(&self, tid: usize, now: u64) -> u64 {
        let window = now >> self.window_bits;
        hash_u64(
            self.seed
                ^ window.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                ^ (tid as u64).wrapping_mul(0xd1b5_4a32_d192_ed03),
        )
    }
}

impl ContentionManager for WindowedGreedyCm {
    fn policy(&self) -> CmPolicy {
        CmPolicy::WindowedGreedy
    }

    fn priority(&self, _tx: &CmTx, tid: usize, now: u64) -> u64 {
        self.draw(tid, now)
    }

    fn on_busy(
        &self,
        spins: u32,
        enemy: Option<usize>,
        shared: &CmShared,
        tx: &CmTx,
        tid: usize,
    ) -> SiteVerdict {
        priority_site(true, spins, enemy, shared, tx, tid)
    }

    fn on_conflict(
        &self,
        spins: u32,
        enemy: Option<usize>,
        shared: &CmShared,
        tx: &CmTx,
        tid: usize,
    ) -> SiteVerdict {
        priority_site(false, spins, enemy, shared, tx, tid)
    }
}

/// One view's contention-management runtime: the policy object plus the
/// shared slots. Built by the view constructor from `VotmConfig`.
#[derive(Debug)]
pub struct CmInstance {
    mgr: Box<dyn ContentionManager>,
    shared: CmShared,
    active: bool,
}

impl CmInstance {
    /// Builds `policy` for a view with `n_threads` participants. `seed`
    /// feeds the windowed-greedy draw (derive it deterministically, e.g.
    /// from the view id, to preserve same-seed replay).
    pub fn new(policy: CmPolicy, n_threads: u32, seed: u64) -> Self {
        let mgr: Box<dyn ContentionManager> = match policy {
            CmPolicy::Backoff => Box::new(BackoffCm),
            CmPolicy::AbortTheYounger => Box::new(AbortTheYoungerCm),
            CmPolicy::Karma => Box::new(KarmaCm),
            CmPolicy::WaitVsAbort => Box::new(WaitVsAbortCm),
            CmPolicy::WindowedGreedy => Box::new(WindowedGreedyCm::new(seed)),
        };
        let active = !mgr.is_passive();
        Self {
            mgr,
            shared: CmShared::new(n_threads),
            active,
        }
    }

    /// The policy object.
    #[inline]
    pub fn manager(&self) -> &dyn ContentionManager {
        self.mgr.as_ref()
    }

    /// The shared slots.
    #[inline]
    pub fn shared(&self) -> &CmShared {
        &self.shared
    }

    /// False for passive managers (the driver skips all CM work).
    #[inline]
    pub fn active(&self) -> bool {
        self.active
    }

    /// Which policy is installed.
    #[inline]
    pub fn policy(&self) -> CmPolicy {
        self.mgr.policy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_reproduces_the_historical_busy_limit() {
        let cm = BackoffCm;
        let shared = CmShared::new(4);
        let tx = CmTx::new(0);
        for spins in 1..BUSY_PATIENCE {
            assert_eq!(
                cm.on_busy(spins, Some(1), &shared, &tx, 0),
                SiteVerdict::Wait { kill: false }
            );
        }
        assert_eq!(
            cm.on_busy(BUSY_PATIENCE, Some(1), &shared, &tx, 0),
            SiteVerdict::AbortSelf { backoff: 0 }
        );
        assert_eq!(
            cm.on_conflict(1, Some(1), &shared, &tx, 0),
            SiteVerdict::AbortSelf { backoff: 0 }
        );
        assert!(cm.is_passive());
    }

    #[test]
    fn priority_order_is_total_exactly_one_side_wins() {
        for (pa, pb) in [(1u64, 2u64), (2, 1), (7, 7)] {
            let a_wins = beats(pa, 0, pb, 1);
            let b_wins = beats(pb, 1, pa, 0);
            assert_ne!(a_wins, b_wins, "({pa},{pb}): exactly one side must win");
        }
    }

    #[test]
    fn doom_is_epoch_guarded_and_cleared_by_attempt_begin() {
        let shared = CmShared::new(4);
        let e1 = shared.attempt_begin(2, 10);
        assert_eq!(shared.doomed_by(2, e1), None);
        assert!(shared.try_doom(2, 0));
        assert!(!shared.try_doom(2, 1), "second doom must not re-fire");
        assert_eq!(shared.doomed_by(2, e1), Some(0));
        // A new attempt clears the mark and invalidates the old epoch.
        let e2 = shared.attempt_begin(2, 11);
        assert_ne!(e1, e2);
        assert_eq!(shared.doomed_by(2, e2), None);
        assert_eq!(shared.doomed_by(2, e1), None, "stale epoch must not doom");
    }

    #[test]
    fn abort_the_younger_lets_the_older_kill_and_the_younger_yield() {
        let cm = AbortTheYoungerCm;
        let shared = CmShared::new(2);
        let old = CmTx {
            prio: 100,
            ..CmTx::new(100)
        };
        let young = CmTx {
            prio: 900,
            ..CmTx::new(900)
        };
        shared.attempt_begin(0, old.prio);
        shared.attempt_begin(1, young.prio);
        assert_eq!(
            cm.on_conflict(1, Some(1), &shared, &old, 0),
            SiteVerdict::Wait { kill: true }
        );
        match cm.on_conflict(1, Some(0), &shared, &young, 1) {
            SiteVerdict::AbortSelf { backoff } => assert_eq!(backoff, LOSER_BACKOFF_BASE),
            v => panic!("younger must yield, got {v:?}"),
        }
    }

    #[test]
    fn karma_banks_wasted_work_and_outranks_fresh_transactions() {
        let cm = KarmaCm;
        let mut long = CmTx::new(0);
        cm.on_aborted(&mut long, 10_000);
        cm.on_aborted(&mut long, 10_000);
        assert_eq!(long.karma, 20_000);
        assert_eq!(long.attempts, 2);
        let fresh = CmTx::new(50);
        assert!(beats(
            cm.priority(&long, 0, 123),
            0,
            cm.priority(&fresh, 1, 123),
            1
        ));
    }

    #[test]
    fn loser_backoff_grows_then_caps() {
        let mut tx = CmTx::new(0);
        let mut prev = 0;
        for _ in 0..8 {
            let b = loser_backoff(&tx);
            assert!(b >= prev);
            assert!(b <= LOSER_BACKOFF_BASE << 4);
            prev = b;
            tx.attempts += 1;
        }
        assert_eq!(loser_backoff(&tx), LOSER_BACKOFF_BASE << 4);
    }

    #[test]
    fn wait_vs_abort_waits_longer_and_never_kills() {
        let cm = WaitVsAbortCm;
        let shared = CmShared::new(2);
        let tx = CmTx::new(0);
        assert_eq!(
            cm.on_busy(BUSY_PATIENCE + 1, Some(1), &shared, &tx, 0),
            SiteVerdict::Wait { kill: false },
            "must outwait the default patience on a known holder"
        );
        assert_eq!(
            cm.on_busy(WAIT_PATIENCE, Some(1), &shared, &tx, 0),
            SiteVerdict::AbortSelf { backoff: 0 }
        );
        assert_eq!(
            cm.on_conflict(1, Some(1), &shared, &tx, 0),
            SiteVerdict::Wait { kill: false }
        );
        assert_eq!(
            cm.on_conflict(CONFLICT_WAIT, Some(1), &shared, &tx, 0),
            SiteVerdict::AbortSelf { backoff: 0 }
        );
    }

    #[test]
    fn windowed_greedy_redraws_across_windows() {
        let cm = WindowedGreedyCm::new(0xABCD);
        let tx = CmTx::new(0);
        let w = 1u64 << GREEDY_WINDOW_BITS;
        // Same window ⇒ same draw; the draw is a pure function.
        assert_eq!(cm.priority(&tx, 3, 10), cm.priority(&tx, 3, w - 1));
        // Across many windows the relative order of two threads flips at
        // least once — the re-randomization that prevents starvation.
        let mut saw_a_wins = false;
        let mut saw_b_wins = false;
        for k in 0..64u64 {
            let now = k * w;
            let pa = cm.priority(&tx, 0, now);
            let pb = cm.priority(&tx, 1, now);
            if beats(pa, 0, pb, 1) {
                saw_a_wins = true;
            } else {
                saw_b_wins = true;
            }
        }
        assert!(
            saw_a_wins && saw_b_wins,
            "order never flipped in 64 windows"
        );
    }

    #[test]
    fn instance_builds_every_policy() {
        for p in CmPolicy::ALL {
            let inst = CmInstance::new(p, 8, 42);
            assert_eq!(inst.policy(), p);
            assert_eq!(inst.active(), p != CmPolicy::Backoff);
            assert_eq!(CmPolicy::from_name(p.name()), Some(p));
        }
        assert_eq!(CmPolicy::from_name("nope"), None);
    }
}
