//! Restricted Admission Control (RAC).
//!
//! RAC is the paper's concurrency-control mechanism: each view carries an
//! admission quota `Q ∈ [1, N]` limiting how many threads may be inside the
//! view at once. `acquire_view` blocks while `P == Q`; on release `P` drops
//! and a waiter is admitted (paper §II). Two components implement this:
//!
//! * [`gate::AdmissionGate`] — the quota semaphore. At `Q = 1` admission is
//!   *exclusive* and the holder runs in uninstrumented lock mode; the gate
//!   guarantees lock-mode and transactional holders never overlap even
//!   across quota changes.
//! * [`controller::RacController`] — the adaptive policy of Observation 1:
//!   estimate `δ(Q) = cycles_aborted / (cycles_successful · (Q − 1))`
//!   (Eq. 5) over windows of completed transactions; halve `Q` when
//!   `δ(Q) > 1`, double it when `δ(Q) < 1`, bounded by `[1, N]`.
//! * [`cm::ContentionManager`] — the *pairwise* complement to RAC's
//!   population control: given two conflicting transactions, decide which
//!   one yields. Pluggable policies (backoff, abort-the-younger, Karma,
//!   wait-vs-abort, windowed-greedy) with per-policy progress guarantees.
//!
//! The controller adds one refinement over the paper's description (which
//! the paper's own results imply but do not spell out): after halving away
//! from a quota that showed `δ > 1`, re-raising to that quota is held back
//! for an exponentially growing cool-down. Without this the raw rule
//! oscillates (Q=2 has δ<1 ⇒ double to 4; Q=4 has δ>1 ⇒ halve to 2; …)
//! instead of settling the way the paper's Table VI reports.

#![warn(missing_docs)]

pub mod cm;
pub mod controller;
pub mod gate;

pub use cm::{CmInstance, CmPolicy, CmShared, CmTx, ContentionManager, SiteVerdict};
pub use controller::{ControllerConfig, QuotaDecision, RacController};
pub use gate::{AdmissionGate, AdmissionMode, GateGuard, GateStats};

/// How a view's quota is managed (third argument of `create_view`: a value
/// `< 1` requests dynamic management, a value `≥ 1` pins the quota).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuotaMode {
    /// Quota fixed at the given value for the whole run.
    Fixed(u32),
    /// Quota starts at N (the thread count) and is adapted by
    /// [`RacController`].
    Adaptive,
    /// Admission control disabled entirely: every thread is always admitted
    /// transactionally (the paper's "multi-TM" and plain-"TM" baselines).
    Unrestricted,
}
