//! The admission gate: RAC's quota semaphore.
//!
//! Semantics from paper §II:
//!
//! 1. `acquire`: if `P < Q`, increment `P` and enter; otherwise block until
//!    `P < Q`.
//! 2. `release`: decrement `P`, wake a blocked thread.
//!
//! With `Q = 1` the gate degenerates to a lock, and the holder is admitted
//! in [`AdmissionMode::Exclusive`] so it may bypass transactional
//! instrumentation. Quota changes take effect for *new* admissions only;
//! safety across a change follows from two rules:
//!
//! * an Exclusive entrant is admitted only when the view is empty
//!   (`P == 0`), and
//! * a Transactional entrant is never admitted while an Exclusive holder is
//!   inside.
//!
//! So instrumented and uninstrumented access can never overlap, no matter
//! when the controller moves `Q`.
//!
//! # Lock-free fast path
//!
//! The gate is a per-transaction fixed cost: *every* transaction pays one
//! admission and one release, so this is exactly the framework overhead the
//! paper's Eq. 5 argument requires to be negligible. The entire gate state —
//! `(inside, quota, drain_waiters, exclusive_inside)` — is packed into one
//! `AtomicU64` ([`PackedState`]), making:
//!
//! * [`AdmissionGate::try_acquire`] / [`AdmissionGate::release`] a single
//!   CAS with bounded exponential backoff on contention (the lightweight
//!   contention-management discipline of Dice, Hendler & Mirsky), and
//! * [`AdmissionGate::quota`] / [`AdmissionGate::inside`] plain loads.
//!
//! The `Notify` slow path (which takes a mutex internally) is entered only
//! to *block* — a full view, an exclusive drain — or to broadcast a quota
//! change. A release wakes waiters only when the sleeper count says someone
//! is parked, so uncontended acquire/release performs **zero** mutex
//! acquisitions; [`AdmissionGate::gate_stats`] counts fast-path admissions
//! and slow-path entries so tests and the throughput gate can verify that.

use std::sync::atomic::{AtomicU64, Ordering};

use votm_sim::{Notify, Rt};
use votm_utils::CachePadded;

/// How a thread was admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionMode {
    /// Sole occupant (quota was 1 at admission); may use uninstrumented
    /// lock-mode access.
    Exclusive,
    /// One of up to `Q` occupants; must use transactional access.
    Transactional,
}

/// Unpacked view of the gate word, used for decisions and assert messages.
///
/// Layout of the packed `u64`:
///
/// ```text
/// bits  0..16   inside            (P, threads currently admitted)
/// bits 16..32   quota             (Q)
/// bits 32..48   drain_waiters     (escalators waiting for an empty view)
/// bit  48       exclusive_inside  (the admitted holder is in lock mode)
/// bit  49       retired           (slot merged away; see [`AdmissionGate::retire`])
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PackedState {
    inside: u16,
    quota: u16,
    drain_waiters: u16,
    exclusive_inside: bool,
    retired: bool,
}

const INSIDE_SHIFT: u64 = 0;
const QUOTA_SHIFT: u64 = 16;
const DRAIN_SHIFT: u64 = 32;
const EXCL_BIT: u64 = 1 << 48;
const RETIRED_BIT: u64 = 1 << 49;
const FIELD_MASK: u64 = 0xFFFF;

impl PackedState {
    #[inline]
    fn unpack(word: u64) -> Self {
        Self {
            inside: ((word >> INSIDE_SHIFT) & FIELD_MASK) as u16,
            quota: ((word >> QUOTA_SHIFT) & FIELD_MASK) as u16,
            drain_waiters: ((word >> DRAIN_SHIFT) & FIELD_MASK) as u16,
            exclusive_inside: word & EXCL_BIT != 0,
            retired: word & RETIRED_BIT != 0,
        }
    }

    #[inline]
    fn pack(self) -> u64 {
        (u64::from(self.inside) << INSIDE_SHIFT)
            | (u64::from(self.quota) << QUOTA_SHIFT)
            | (u64::from(self.drain_waiters) << DRAIN_SHIFT)
            | if self.exclusive_inside { EXCL_BIT } else { 0 }
            | if self.retired { RETIRED_BIT } else { 0 }
    }
}

/// Counters for the fast/slow path split, snapshotted by
/// [`AdmissionGate::gate_stats`].
///
/// `fast_acquires` are admissions granted by the CAS fast path without ever
/// touching the `Notify` mutex; `slow_acquires` had to park at least once.
/// `slow_path_entries` counts every entry into the mutex-protected wait /
/// wake machinery (epoch snapshot + sleep, or a wake broadcast).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GateStats {
    /// Admissions completed entirely on the lock-free CAS path.
    pub fast_acquires: u64,
    /// Admissions that entered the blocking slow path at least once.
    pub slow_acquires: u64,
    /// Entries into the mutex-backed wait/wake slow path.
    pub slow_path_entries: u64,
}

impl GateStats {
    /// Fraction of admissions served without blocking (1.0 when idle).
    pub fn fast_path_hit_rate(&self) -> f64 {
        let total = self.fast_acquires + self.slow_acquires;
        if total == 0 {
            return 1.0;
        }
        self.fast_acquires as f64 / total as f64
    }

    /// Difference `self − earlier`, for windowed reporting.
    pub fn since(&self, earlier: &GateStats) -> GateStats {
        GateStats {
            fast_acquires: self.fast_acquires - earlier.fast_acquires,
            slow_acquires: self.slow_acquires - earlier.slow_acquires,
            slow_path_entries: self.slow_path_entries - earlier.slow_path_entries,
        }
    }
}

/// RAII admission: releases the gate on drop.
///
/// Returned by [`AdmissionGate::admit`] / [`AdmissionGate::acquire_exclusive`].
/// Holding admission as a guard (instead of a bare [`AdmissionMode`] that
/// must be paired with a manual [`AdmissionGate::release`]) is what makes
/// the transaction pipeline panic-safe: if the body or the commit path
/// unwinds, the guard's drop still decrements `P` and wakes waiters, so a
/// crashed transaction can never strand the view at `P > 0` forever.
#[must_use = "dropping the guard releases admission immediately"]
#[derive(Debug)]
pub struct GateGuard<'g> {
    gate: &'g AdmissionGate,
    mode: AdmissionMode,
}

impl GateGuard<'_> {
    /// How this guard's holder was admitted.
    pub fn mode(&self) -> AdmissionMode {
        self.mode
    }
}

impl Drop for GateGuard<'_> {
    fn drop(&mut self) {
        self.gate.release(self.mode);
    }
}

/// Bounded CAS retry budget before a fast-path attempt gives up and reports
/// "must wait". Under the simulator a CAS never fails (one OS thread); under
/// real threads a handful of retries with escalating pauses absorbs transient
/// contention without degrading into unbounded spinning.
const CAS_RETRY_LIMIT: u32 = 8;

/// Quota semaphore with exclusive (lock-mode) admission at `Q = 1`.
#[derive(Debug)]
pub struct AdmissionGate {
    /// The packed `(inside, quota, drain_waiters, exclusive)` word — the
    /// single source of truth, alone on its cache line.
    word: CachePadded<AtomicU64>,
    /// Threads parked (or about to park) in the blocking slow path. A
    /// release skips the wake broadcast entirely while this is zero.
    sleepers: CachePadded<AtomicU64>,
    /// Fast/slow path accounting; see [`GateStats`].
    fast_acquires: CachePadded<AtomicU64>,
    slow_acquires: CachePadded<AtomicU64>,
    slow_path_entries: CachePadded<AtomicU64>,
    notify: Notify,
    max_threads: u32,
}

impl AdmissionGate {
    /// Creates a gate with an initial quota (clamped to `[1, max_threads]`).
    pub fn new(initial_quota: u32, max_threads: u32) -> Self {
        assert!(max_threads >= 1);
        assert!(
            max_threads <= u32::from(u16::MAX),
            "max_threads {max_threads} exceeds the packed-field width"
        );
        let init = PackedState {
            inside: 0,
            quota: initial_quota.clamp(1, max_threads) as u16,
            drain_waiters: 0,
            exclusive_inside: false,
            retired: false,
        };
        Self {
            word: CachePadded::new(AtomicU64::new(init.pack())),
            sleepers: CachePadded::new(AtomicU64::new(0)),
            fast_acquires: CachePadded::new(AtomicU64::new(0)),
            slow_acquires: CachePadded::new(AtomicU64::new(0)),
            slow_path_entries: CachePadded::new(AtomicU64::new(0)),
            notify: Notify::new(),
            max_threads,
        }
    }

    #[inline]
    fn load(&self) -> PackedState {
        PackedState::unpack(self.word.load(Ordering::SeqCst))
    }

    /// Current quota `Q` (plain load, no lock).
    pub fn quota(&self) -> u32 {
        u32::from(self.load().quota)
    }

    /// Threads currently inside (`P`) (plain load, no lock).
    pub fn inside(&self) -> u32 {
        u32::from(self.load().inside)
    }

    /// The `N` this gate was configured with.
    pub fn max_threads(&self) -> u32 {
        self.max_threads
    }

    /// Escalated entrants currently waiting for exclusive admission (see
    /// [`Self::acquire_exclusive`]); exposed for stall diagnostics.
    pub fn drain_waiters(&self) -> u32 {
        u32::from(self.load().drain_waiters)
    }

    /// Fast/slow path counters (see [`GateStats`]).
    pub fn gate_stats(&self) -> GateStats {
        GateStats {
            fast_acquires: self.fast_acquires.load(Ordering::Relaxed),
            slow_acquires: self.slow_acquires.load(Ordering::Relaxed),
            slow_path_entries: self.slow_path_entries.load(Ordering::Relaxed),
        }
    }

    /// Retires this gate's view slot after a merge folded its buckets into
    /// a survivor. A retired gate still *admits* — a racer holding a stale
    /// route must be able to enter, discover the stale route, and leave
    /// through the re-route path rather than hang — but the slot is dead
    /// for control purposes: [`Self::set_quota`] becomes a no-op so no
    /// controller decision can resurrect a merged-away view's quota, and
    /// [`Self::is_retired`] lets routers and diagnostics see the state.
    pub fn retire(&self) {
        let mut cur = self.word.load(Ordering::SeqCst);
        loop {
            let mut st = PackedState::unpack(cur);
            st.retired = true;
            match self.word.compare_exchange_weak(
                cur,
                st.pack(),
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => break,
                Err(observed) => cur = observed,
            }
        }
        // Anyone parked on a full pre-merge gate must re-check: the drain
        // that preceded retirement already emptied the view, so they admit
        // immediately and exit through the router's stale-route path.
        self.slow_path_entries.fetch_add(1, Ordering::Relaxed);
        self.notify.notify_all();
    }

    /// Whether [`Self::retire`] was called on this gate.
    pub fn is_retired(&self) -> bool {
        self.load().retired
    }

    /// Sets the quota (clamped to `[1, max_threads]`) and wakes waiters so
    /// an increase admits them promptly. Quota changes are rare (one per
    /// controller window), so this always takes the broadcast slow path.
    /// No-op on a retired gate (see [`Self::retire`]).
    pub fn set_quota(&self, quota: u32) {
        let q = quota.clamp(1, self.max_threads) as u16;
        let mut cur = self.word.load(Ordering::SeqCst);
        loop {
            let mut st = PackedState::unpack(cur);
            if st.retired {
                return;
            }
            st.quota = q;
            match self.word.compare_exchange_weak(
                cur,
                st.pack(),
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => break,
                Err(observed) => cur = observed,
            }
        }
        self.slow_path_entries.fetch_add(1, Ordering::Relaxed);
        self.notify.notify_all();
    }

    /// One non-blocking admission attempt; `None` means the caller must
    /// wait. Pure CAS with bounded backoff — no mutex, ever.
    fn try_acquire(&self) -> Option<AdmissionMode> {
        let mut backoff = votm_utils::Backoff::new();
        let mut attempts = 0;
        let mut cur = self.word.load(Ordering::SeqCst);
        loop {
            let st = PackedState::unpack(cur);
            if st.drain_waiters > 0 {
                // An escalated (starved) transaction is draining the view;
                // no new ordinary admissions until it has entered and left.
                return None;
            }
            let (next, mode) = if st.quota <= 1 {
                if st.inside != 0 {
                    return None;
                }
                (
                    PackedState {
                        inside: 1,
                        exclusive_inside: true,
                        ..st
                    },
                    AdmissionMode::Exclusive,
                )
            } else if !st.exclusive_inside && st.inside < st.quota {
                (
                    PackedState {
                        inside: st.inside + 1,
                        ..st
                    },
                    AdmissionMode::Transactional,
                )
            } else {
                return None;
            };
            match self.word.compare_exchange_weak(
                cur,
                next.pack(),
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return Some(mode),
                Err(observed) => {
                    attempts += 1;
                    if attempts >= CAS_RETRY_LIMIT {
                        // Pathological CAS contention: treat as "must wait"
                        // rather than spinning unboundedly (Dice et al.'s
                        // bounded-backoff discipline).
                        return None;
                    }
                    backoff.snooze();
                    cur = observed;
                }
            }
        }
    }

    /// Acquires admission, suspending (simulated or real) while the view is
    /// full. This is `acquire_view`'s blocking step.
    pub async fn acquire(&self, rt: &Rt) -> AdmissionMode {
        // Uncontended fast path: one CAS, no mutex, no Notify traffic.
        if let Some(mode) = self.try_acquire() {
            self.fast_acquires.fetch_add(1, Ordering::Relaxed);
            return mode;
        }
        self.slow_acquires.fetch_add(1, Ordering::Relaxed);
        // Register as a sleeper *before* the epoch/test/wait sequence so a
        // concurrent release cannot skip the wake broadcast: if our
        // try_acquire below fails, the releaser's decrement came after it,
        // and its sleeper check comes later still — so it must observe this
        // registration (all SeqCst). The guard survives cancellation.
        let _sleeper = SleeperGuard::register(self);
        loop {
            let epoch = self.notify.epoch();
            self.slow_path_entries.fetch_add(1, Ordering::Relaxed);
            if let Some(mode) = self.try_acquire() {
                return mode;
            }
            rt.wait(&self.notify, epoch).await;
        }
    }

    /// Like [`Self::acquire`], but returns an RAII [`GateGuard`] that
    /// releases admission on drop — including during an unwind.
    pub async fn admit(&self, rt: &Rt) -> GateGuard<'_> {
        let mode = self.acquire(rt).await;
        GateGuard { gate: self, mode }
    }

    /// Escalated admission for a starving transaction: waits for the view
    /// to drain completely, then enters in [`AdmissionMode::Exclusive`]
    /// *regardless of the current quota*.
    ///
    /// While any escalator waits, ordinary admissions are refused, so the
    /// view empties in bounded time and a transaction that has lost `K`
    /// consecutive conflicts can run uncontended (the irrevocable Q = 1
    /// lock-mode fallback). The drain reservation itself is dropped safely
    /// if this future is cancelled mid-wait.
    pub async fn acquire_exclusive(&self, rt: &Rt) -> GateGuard<'_> {
        // Reservation ticket: un-registers the drain request if the caller
        // is cancelled before being admitted.
        struct DrainTicket<'g> {
            gate: &'g AdmissionGate,
            admitted: bool,
        }
        impl Drop for DrainTicket<'_> {
            fn drop(&mut self) {
                if !self.admitted {
                    self.gate.update_drain(-1);
                    self.gate.wake_sleepers();
                }
            }
        }

        self.update_drain(1);
        let mut ticket = DrainTicket {
            gate: self,
            admitted: false,
        };
        let _sleeper = SleeperGuard::register(self);
        let mut cur = self.word.load(Ordering::SeqCst);
        loop {
            let epoch = self.notify.epoch();
            self.slow_path_entries.fetch_add(1, Ordering::Relaxed);
            loop {
                let st = PackedState::unpack(cur);
                if st.inside != 0 {
                    break;
                }
                debug_assert!(st.drain_waiters > 0, "lost our drain reservation");
                let next = PackedState {
                    inside: 1,
                    exclusive_inside: true,
                    drain_waiters: st.drain_waiters - 1,
                    ..st
                };
                match self.word.compare_exchange_weak(
                    cur,
                    next.pack(),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                ) {
                    Ok(_) => {
                        ticket.admitted = true;
                        return GateGuard {
                            gate: self,
                            mode: AdmissionMode::Exclusive,
                        };
                    }
                    Err(observed) => cur = observed,
                }
            }
            rt.wait(&self.notify, epoch).await;
            cur = self.word.load(Ordering::SeqCst);
        }
    }

    /// Adjusts the drain-waiter field by `delta` (CAS loop).
    fn update_drain(&self, delta: i32) {
        let mut cur = self.word.load(Ordering::SeqCst);
        loop {
            let mut st = PackedState::unpack(cur);
            st.drain_waiters = st
                .drain_waiters
                .checked_add_signed(delta as i16)
                .expect("drain_waiters under/overflow");
            match self.word.compare_exchange_weak(
                cur,
                st.pack(),
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return,
                Err(observed) => cur = observed,
            }
        }
    }

    /// Wakes parked waiters, but only if someone is actually parked — the
    /// uncontended release path never touches the Notify mutex.
    #[inline]
    fn wake_sleepers(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            self.slow_path_entries.fetch_add(1, Ordering::Relaxed);
            self.notify.notify_all();
        }
    }

    /// Releases one admission (`release_view`'s final step). Pure CAS on the
    /// uncontended path; the Notify mutex is touched only when a waiter is
    /// parked.
    ///
    /// # Panics
    /// On unbalanced use — releasing an empty gate, or an exclusive release
    /// with no exclusive holder inside. These checks are always on (not
    /// `debug_assert`): an unbalanced release silently corrupts `P` and
    /// every admission decision after it, so it must fail loudly with the
    /// gate state in the message. The panic fires *before* any state
    /// mutation, so a caught unbalanced release leaves the gate intact.
    pub fn release(&self, mode: AdmissionMode) {
        let mut cur = self.word.load(Ordering::SeqCst);
        loop {
            let st = PackedState::unpack(cur);
            assert!(
                st.inside > 0,
                "AdmissionGate::release without a matching acquire \
                 (mode {mode:?}, quota {}, inside {}, exclusive_inside {})",
                st.quota,
                st.inside,
                st.exclusive_inside,
            );
            if mode == AdmissionMode::Exclusive {
                assert!(
                    st.exclusive_inside,
                    "exclusive release but no exclusive holder inside \
                     (quota {}, inside {})",
                    st.quota, st.inside,
                );
            }
            let next = PackedState {
                inside: st.inside - 1,
                exclusive_inside: st.exclusive_inside && mode != AdmissionMode::Exclusive,
                ..st
            };
            match self.word.compare_exchange_weak(
                cur,
                next.pack(),
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => break,
                Err(observed) => cur = observed,
            }
        }
        self.wake_sleepers();
    }
}

/// RAII sleeper registration: decrements the count even if the waiting
/// future is cancelled mid-park.
struct SleeperGuard<'g> {
    gate: &'g AdmissionGate,
}

impl<'g> SleeperGuard<'g> {
    fn register(gate: &'g AdmissionGate) -> Self {
        gate.sleepers.fetch_add(1, Ordering::SeqCst);
        Self { gate }
    }
}

impl Drop for SleeperGuard<'_> {
    fn drop(&mut self) {
        self.gate.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;
    use votm_sim::{RunStatus, SimConfig, SimExecutor};
    use votm_utils::Mutex;

    #[test]
    fn try_acquire_respects_quota() {
        let g = AdmissionGate::new(2, 16);
        let a = g.try_acquire().unwrap();
        let b = g.try_acquire().unwrap();
        assert_eq!(a, AdmissionMode::Transactional);
        assert_eq!(b, AdmissionMode::Transactional);
        assert!(g.try_acquire().is_none(), "third entrant must wait");
        g.release(a);
        assert!(g.try_acquire().is_some());
        let _ = b;
    }

    #[test]
    fn quota_one_is_exclusive() {
        let g = AdmissionGate::new(1, 16);
        let a = g.try_acquire().unwrap();
        assert_eq!(a, AdmissionMode::Exclusive);
        assert!(g.try_acquire().is_none());
        g.release(a);
        assert_eq!(g.inside(), 0);
    }

    #[test]
    fn exclusive_waits_for_view_to_drain_after_quota_drop() {
        let g = AdmissionGate::new(4, 16);
        let a = g.try_acquire().unwrap();
        let b = g.try_acquire().unwrap();
        g.set_quota(1);
        assert!(
            g.try_acquire().is_none(),
            "exclusive admission requires an empty view"
        );
        g.release(a);
        assert!(g.try_acquire().is_none(), "still one transactional holder");
        g.release(b);
        assert_eq!(g.try_acquire().unwrap(), AdmissionMode::Exclusive);
    }

    #[test]
    fn transactional_blocked_while_exclusive_inside_after_quota_raise() {
        let g = AdmissionGate::new(1, 16);
        let excl = g.try_acquire().unwrap();
        g.set_quota(8);
        assert!(
            g.try_acquire().is_none(),
            "lock-mode holder must not overlap transactional entrants"
        );
        g.release(excl);
        assert_eq!(g.try_acquire().unwrap(), AdmissionMode::Transactional);
    }

    #[test]
    fn retired_gate_still_admits_but_refuses_quota_changes() {
        let g = AdmissionGate::new(4, 16);
        assert!(!g.is_retired());
        g.retire();
        assert!(g.is_retired());
        // A racer with a stale route can still enter (and then leave via
        // the router's re-route path) — retirement must not hang it.
        let a = g.try_acquire().unwrap();
        assert_eq!(a, AdmissionMode::Transactional);
        g.release(a);
        // But no controller decision can move the dead slot's quota.
        g.set_quota(16);
        assert_eq!(g.quota(), 4);
        assert!(g.is_retired(), "retirement is permanent");
    }

    #[test]
    #[should_panic(expected = "release without a matching acquire")]
    fn unbalanced_release_panics_with_gate_state() {
        let g = AdmissionGate::new(4, 16);
        g.release(AdmissionMode::Transactional);
    }

    #[test]
    #[should_panic(expected = "no exclusive holder inside")]
    fn exclusive_release_without_exclusive_holder_panics() {
        let g = AdmissionGate::new(4, 16);
        let _t = g.try_acquire().unwrap();
        g.release(AdmissionMode::Exclusive);
    }

    /// The balance asserts fire *before* any mutation, so a caught
    /// unbalanced release (a mid-release panic) leaves the gate word intact
    /// and the gate fully usable — P ≤ Q holds throughout.
    #[test]
    fn mid_release_panic_leaves_gate_consistent() {
        let g = Arc::new(AdmissionGate::new(4, 16));
        let a = g.try_acquire().unwrap();
        let g2 = Arc::clone(&g);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            g2.release(AdmissionMode::Exclusive); // unbalanced: panics
        }));
        assert!(r.is_err());
        assert_eq!(g.inside(), 1, "failed release must not mutate P");
        assert_eq!(g.quota(), 4);
        // Gate still works: admit up to quota, then balanced releases.
        let b = g.try_acquire().unwrap();
        let c = g.try_acquire().unwrap();
        let d = g.try_acquire().unwrap();
        assert!(g.try_acquire().is_none());
        for m in [a, b, c, d] {
            g.release(m);
        }
        assert_eq!(g.inside(), 0);
    }

    /// Acceptance check for the lock-free fast path: an uncontended
    /// acquire/release stream performs zero slow-path (mutex) entries and
    /// 100% fast-path admissions.
    #[test]
    fn uncontended_path_never_enters_slow_path() {
        let gate = Arc::new(AdmissionGate::new(4, 16));
        let mut ex = SimExecutor::new(SimConfig::default());
        {
            let gate = Arc::clone(&gate);
            ex.spawn(move |rt| async move {
                for _ in 0..100 {
                    let guard = gate.admit(&rt).await;
                    rt.charge(10).await;
                    drop(guard);
                }
            });
        }
        assert_eq!(ex.run().status, RunStatus::Completed);
        let s = gate.gate_stats();
        assert_eq!(s.fast_acquires, 100, "all admissions on the CAS path");
        assert_eq!(s.slow_acquires, 0);
        assert_eq!(
            s.slow_path_entries, 0,
            "uncontended acquire/release must never touch the mutex path"
        );
        assert!((s.fast_path_hit_rate() - 1.0).abs() < 1e-12);
    }

    /// A contended gate still admits everyone, and the stats ledger accounts
    /// for every admission as either fast or slow.
    #[test]
    fn contended_stats_ledger_is_complete() {
        let gate = Arc::new(AdmissionGate::new(2, 16));
        let mut ex = SimExecutor::new(SimConfig::default());
        for _ in 0..8 {
            let gate = Arc::clone(&gate);
            ex.spawn(move |rt| async move {
                for _ in 0..25 {
                    let guard = gate.admit(&rt).await;
                    rt.charge(50).await;
                    drop(guard);
                }
            });
        }
        assert_eq!(ex.run().status, RunStatus::Completed);
        let s = gate.gate_stats();
        assert_eq!(s.fast_acquires + s.slow_acquires, 8 * 25);
        assert!(
            s.slow_acquires > 0,
            "Q=2 with 8 threads must block somebody"
        );
        assert!(s.slow_path_entries > 0);
        assert!(s.fast_path_hit_rate() < 1.0);
    }

    #[test]
    fn guard_releases_on_drop_even_through_panic() {
        let gate = Arc::new(AdmissionGate::new(2, 16));
        let mut ex = SimExecutor::new(SimConfig::default());
        {
            let gate = Arc::clone(&gate);
            ex.spawn(move |rt| async move {
                let guard = gate.admit(&rt).await;
                assert_eq!(guard.mode(), AdmissionMode::Transactional);
                rt.charge(10).await;
                // `guard` dropped here: P returns to 0.
            });
        }
        assert_eq!(ex.run().status, RunStatus::Completed);
        assert_eq!(gate.inside(), 0, "guard drop must release admission");

        // The panic path: unwinding out of a scope holding the guard still
        // releases (caught so the test itself survives).
        let gate2 = Arc::clone(&gate);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let mode = gate2.try_acquire().unwrap();
            let _guard = GateGuard { gate: &gate2, mode };
            panic!("unwind while admitted");
        }));
        assert_eq!(gate.inside(), 0, "unwind must not strand P");
    }

    #[test]
    fn exclusive_escalation_drains_and_blocks_new_entrants() {
        let gate = Arc::new(AdmissionGate::new(4, 16));
        let a = gate.try_acquire().unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut ex = SimExecutor::new(SimConfig::default());
        {
            // Escalator: must wait for `a` to leave, then enter exclusively.
            let gate = Arc::clone(&gate);
            let order = Arc::clone(&order);
            ex.spawn(move |rt| async move {
                let guard = gate.acquire_exclusive(&rt).await;
                assert_eq!(guard.mode(), AdmissionMode::Exclusive);
                order.lock().push("escalator");
                rt.charge(50).await;
            });
        }
        {
            // Ordinary entrant arriving later: despite free quota it must
            // queue behind the escalator's drain reservation.
            let gate = Arc::clone(&gate);
            let order = Arc::clone(&order);
            ex.spawn(move |rt| async move {
                rt.charge(5).await; // arrive after the escalator registered
                let _guard = gate.admit(&rt).await;
                order.lock().push("ordinary");
                rt.charge(10).await;
            });
        }
        {
            // Holder `a` leaves at t=20, emptying the view.
            let gate = Arc::clone(&gate);
            ex.spawn(move |rt| async move {
                rt.charge(20).await;
                gate.release(a);
            });
        }
        assert_eq!(ex.run().status, RunStatus::Completed);
        assert_eq!(
            *order.lock(),
            vec!["escalator", "ordinary"],
            "escalator must be admitted first, exclusively"
        );
        assert_eq!(gate.inside(), 0);
        assert_eq!(gate.drain_waiters(), 0);
    }

    #[test]
    fn quota_clamps_to_bounds() {
        let g = AdmissionGate::new(99, 16);
        assert_eq!(g.quota(), 16);
        g.set_quota(0);
        assert_eq!(g.quota(), 1);
        g.set_quota(7);
        assert_eq!(g.quota(), 7);
    }

    #[test]
    fn sim_concurrent_occupancy_never_exceeds_quota() {
        // 16 simulated threads hammering a Q=4 gate; instantaneous occupancy
        // is tracked with an atomic high-water mark.
        let gate = Arc::new(AdmissionGate::new(4, 16));
        let peak = Arc::new(AtomicU32::new(0));
        let inside = Arc::new(AtomicU32::new(0));
        let mut ex = SimExecutor::new(SimConfig::default());
        for _ in 0..16 {
            let gate = Arc::clone(&gate);
            let peak = Arc::clone(&peak);
            let inside = Arc::clone(&inside);
            ex.spawn(move |rt| async move {
                for _ in 0..20 {
                    let mode = gate.acquire(&rt).await;
                    let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    rt.charge(50).await; // dwell inside the view
                    inside.fetch_sub(1, Ordering::SeqCst);
                    gate.release(mode);
                    rt.charge(10).await; // outside work
                }
            });
        }
        let out = ex.run();
        assert_eq!(out.status, RunStatus::Completed);
        assert_eq!(inside.load(Ordering::SeqCst), 0);
        let p = peak.load(Ordering::SeqCst);
        assert!(p <= 4, "occupancy {p} exceeded quota 4");
        assert!(p >= 3, "gate should actually admit concurrency (peak {p})");
    }

    #[test]
    fn sim_quota_one_serialises_completely() {
        let gate = Arc::new(AdmissionGate::new(1, 8));
        let overlap = Arc::new(AtomicU32::new(0));
        let mut ex = SimExecutor::new(SimConfig::default());
        for _ in 0..8 {
            let gate = Arc::clone(&gate);
            let overlap = Arc::clone(&overlap);
            ex.spawn(move |rt| async move {
                for _ in 0..10 {
                    let mode = gate.acquire(&rt).await;
                    assert_eq!(mode, AdmissionMode::Exclusive);
                    assert_eq!(overlap.fetch_add(1, Ordering::SeqCst), 0);
                    rt.charge(30).await;
                    overlap.fetch_sub(1, Ordering::SeqCst);
                    gate.release(mode);
                }
            });
        }
        assert_eq!(ex.run().status, RunStatus::Completed);
    }

    /// Serializability of the CAS fast path against concurrent `set_quota`
    /// storms and exclusive drains: instantaneous occupancy never exceeds
    /// the *largest* quota ever set, exclusive holders never overlap
    /// anybody, everyone finishes, and the final word is balanced.
    #[test]
    fn sim_cas_admission_interleaved_with_quota_changes_and_drain() {
        for seed in 0..8u64 {
            let gate = Arc::new(AdmissionGate::new(4, 16));
            let inside = Arc::new(AtomicU32::new(0));
            let peak = Arc::new(AtomicU32::new(0));
            let excl_overlap = Arc::new(AtomicU32::new(0));
            let mut ex = SimExecutor::new(SimConfig {
                seed,
                ..SimConfig::default()
            });
            // 12 ordinary entrants.
            for _ in 0..12 {
                let gate = Arc::clone(&gate);
                let inside = Arc::clone(&inside);
                let peak = Arc::clone(&peak);
                ex.spawn(move |rt| async move {
                    for _ in 0..10 {
                        let guard = gate.admit(&rt).await;
                        let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        rt.charge(30).await;
                        inside.fetch_sub(1, Ordering::SeqCst);
                        drop(guard);
                        rt.charge(5).await;
                    }
                });
            }
            // A quota-storm controller: 1 ↔ 8, never above 8.
            {
                let gate = Arc::clone(&gate);
                ex.spawn(move |rt| async move {
                    for i in 0..20 {
                        rt.charge(40).await;
                        gate.set_quota(if i % 2 == 0 { 1 } else { 8 });
                    }
                    gate.set_quota(8); // leave room so everyone finishes
                });
            }
            // Two escalators doing exclusive drains mid-storm.
            for _ in 0..2 {
                let gate = Arc::clone(&gate);
                let inside = Arc::clone(&inside);
                let excl_overlap = Arc::clone(&excl_overlap);
                ex.spawn(move |rt| async move {
                    rt.charge(100).await;
                    let guard = gate.acquire_exclusive(&rt).await;
                    assert_eq!(
                        inside.load(Ordering::SeqCst),
                        0,
                        "exclusive admission into a non-empty view"
                    );
                    assert_eq!(excl_overlap.fetch_add(1, Ordering::SeqCst), 0);
                    rt.charge(60).await;
                    excl_overlap.fetch_sub(1, Ordering::SeqCst);
                    drop(guard);
                });
            }
            let out = ex.run();
            assert_eq!(out.status, RunStatus::Completed, "seed {seed}");
            assert!(
                peak.load(Ordering::SeqCst) <= 8,
                "seed {seed}: occupancy exceeded the largest quota ever set"
            );
            assert_eq!(gate.inside(), 0, "seed {seed}: unbalanced at exit");
            assert_eq!(gate.drain_waiters(), 0, "seed {seed}");
        }
    }

    #[test]
    fn real_threads_respect_quota() {
        let gate = Arc::new(AdmissionGate::new(3, 8));
        let peak = Arc::new(AtomicU32::new(0));
        let inside = Arc::new(AtomicU32::new(0));
        let gate2 = Arc::clone(&gate);
        let peak2 = Arc::clone(&peak);
        let inside2 = Arc::clone(&inside);
        votm_sim::run_parallel(8, move |_, rt| {
            let gate = Arc::clone(&gate2);
            let peak = Arc::clone(&peak2);
            let inside = Arc::clone(&inside2);
            async move {
                for _ in 0..50 {
                    let mode = gate.acquire(&rt).await;
                    let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    rt.work(200).await;
                    inside.fetch_sub(1, Ordering::SeqCst);
                    gate.release(mode);
                }
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 3);
        assert_eq!(inside.load(Ordering::SeqCst), 0);
    }

    /// Real threads hammering the fast path: the ledger stays complete and
    /// a generously-sized quota keeps everything on the CAS path.
    #[test]
    fn real_threads_fast_path_accounting() {
        let gate = Arc::new(AdmissionGate::new(8, 8));
        let gate2 = Arc::clone(&gate);
        votm_sim::run_parallel(8, move |_, rt| {
            let gate = Arc::clone(&gate2);
            async move {
                for _ in 0..100 {
                    let mode = gate.acquire(&rt).await;
                    gate.release(mode);
                }
            }
        });
        let s = gate.gate_stats();
        assert_eq!(s.fast_acquires + s.slow_acquires, 800);
        assert_eq!(gate.inside(), 0);
    }
}
