//! The admission gate: RAC's quota semaphore.
//!
//! Semantics from paper §II:
//!
//! 1. `acquire`: if `P < Q`, increment `P` and enter; otherwise block until
//!    `P < Q`.
//! 2. `release`: decrement `P`, wake a blocked thread.
//!
//! With `Q = 1` the gate degenerates to a lock, and the holder is admitted
//! in [`AdmissionMode::Exclusive`] so it may bypass transactional
//! instrumentation. Quota changes take effect for *new* admissions only;
//! safety across a change follows from two rules:
//!
//! * an Exclusive entrant is admitted only when the view is empty
//!   (`P == 0`), and
//! * a Transactional entrant is never admitted while an Exclusive holder is
//!   inside.
//!
//! So instrumented and uninstrumented access can never overlap, no matter
//! when the controller moves `Q`.

use votm_sim::{Notify, Rt};
use votm_utils::Mutex;

/// How a thread was admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionMode {
    /// Sole occupant (quota was 1 at admission); may use uninstrumented
    /// lock-mode access.
    Exclusive,
    /// One of up to `Q` occupants; must use transactional access.
    Transactional,
}

#[derive(Debug)]
struct GateState {
    quota: u32,
    inside: u32,
    exclusive_inside: bool,
    /// Escalated entrants waiting in [`AdmissionGate::acquire_exclusive`].
    /// While non-zero, ordinary admissions are refused so the view drains
    /// and the escalator cannot be starved by a stream of new entrants.
    drain_waiters: u32,
}

/// RAII admission: releases the gate on drop.
///
/// Returned by [`AdmissionGate::admit`] / [`AdmissionGate::admit_exclusive`].
/// Holding admission as a guard (instead of a bare [`AdmissionMode`] that
/// must be paired with a manual [`AdmissionGate::release`]) is what makes
/// the transaction pipeline panic-safe: if the body or the commit path
/// unwinds, the guard's drop still decrements `P` and wakes waiters, so a
/// crashed transaction can never strand the view at `P > 0` forever.
#[must_use = "dropping the guard releases admission immediately"]
#[derive(Debug)]
pub struct GateGuard<'g> {
    gate: &'g AdmissionGate,
    mode: AdmissionMode,
}

impl GateGuard<'_> {
    /// How this guard's holder was admitted.
    pub fn mode(&self) -> AdmissionMode {
        self.mode
    }
}

impl Drop for GateGuard<'_> {
    fn drop(&mut self) {
        self.gate.release(self.mode);
    }
}

/// Quota semaphore with exclusive (lock-mode) admission at `Q = 1`.
#[derive(Debug)]
pub struct AdmissionGate {
    state: Mutex<GateState>,
    notify: Notify,
    max_threads: u32,
}

impl AdmissionGate {
    /// Creates a gate with an initial quota (clamped to `[1, max_threads]`).
    pub fn new(initial_quota: u32, max_threads: u32) -> Self {
        assert!(max_threads >= 1);
        Self {
            state: Mutex::new(GateState {
                quota: initial_quota.clamp(1, max_threads),
                inside: 0,
                exclusive_inside: false,
                drain_waiters: 0,
            }),
            notify: Notify::new(),
            max_threads,
        }
    }

    /// Current quota `Q`.
    pub fn quota(&self) -> u32 {
        self.state.lock().quota
    }

    /// Threads currently inside (`P`).
    pub fn inside(&self) -> u32 {
        self.state.lock().inside
    }

    /// The `N` this gate was configured with.
    pub fn max_threads(&self) -> u32 {
        self.max_threads
    }

    /// Sets the quota (clamped to `[1, max_threads]`) and wakes waiters so
    /// an increase admits them promptly.
    pub fn set_quota(&self, quota: u32) {
        {
            let mut st = self.state.lock();
            st.quota = quota.clamp(1, self.max_threads);
        }
        self.notify.notify_all();
    }

    /// Escalated entrants currently waiting for exclusive admission (see
    /// [`Self::acquire_exclusive`]); exposed for stall diagnostics.
    pub fn drain_waiters(&self) -> u32 {
        self.state.lock().drain_waiters
    }

    /// One non-blocking admission attempt; `None` means the caller must
    /// wait.
    fn try_acquire(&self) -> Option<AdmissionMode> {
        let mut st = self.state.lock();
        if st.drain_waiters > 0 {
            // An escalated (starved) transaction is draining the view; no
            // new ordinary admissions until it has entered and left.
            return None;
        }
        if st.quota <= 1 {
            if st.inside == 0 {
                st.inside = 1;
                st.exclusive_inside = true;
                return Some(AdmissionMode::Exclusive);
            }
        } else if !st.exclusive_inside && st.inside < st.quota {
            st.inside += 1;
            return Some(AdmissionMode::Transactional);
        }
        None
    }

    /// Acquires admission, suspending (simulated or real) while the view is
    /// full. This is `acquire_view`'s blocking step.
    pub async fn acquire(&self, rt: &Rt) -> AdmissionMode {
        loop {
            let epoch = self.notify.epoch();
            if let Some(mode) = self.try_acquire() {
                return mode;
            }
            rt.wait(&self.notify, epoch).await;
        }
    }

    /// Like [`Self::acquire`], but returns an RAII [`GateGuard`] that
    /// releases admission on drop — including during an unwind.
    pub async fn admit(&self, rt: &Rt) -> GateGuard<'_> {
        let mode = self.acquire(rt).await;
        GateGuard { gate: self, mode }
    }

    /// Escalated admission for a starving transaction: waits for the view
    /// to drain completely, then enters in [`AdmissionMode::Exclusive`]
    /// *regardless of the current quota*.
    ///
    /// While any escalator waits, ordinary admissions are refused, so the
    /// view empties in bounded time and a transaction that has lost `K`
    /// consecutive conflicts can run uncontended (the irrevocable Q = 1
    /// lock-mode fallback). The drain reservation itself is dropped safely
    /// if this future is cancelled mid-wait.
    pub async fn acquire_exclusive(&self, rt: &Rt) -> GateGuard<'_> {
        // Reservation ticket: un-registers the drain request if the caller
        // is cancelled before being admitted.
        struct DrainTicket<'g> {
            gate: &'g AdmissionGate,
            admitted: bool,
        }
        impl Drop for DrainTicket<'_> {
            fn drop(&mut self) {
                if !self.admitted {
                    self.gate.state.lock().drain_waiters -= 1;
                    self.gate.notify.notify_all();
                }
            }
        }

        self.state.lock().drain_waiters += 1;
        let mut ticket = DrainTicket {
            gate: self,
            admitted: false,
        };
        loop {
            let epoch = self.notify.epoch();
            {
                let mut st = self.state.lock();
                if st.inside == 0 {
                    st.inside = 1;
                    st.exclusive_inside = true;
                    st.drain_waiters -= 1;
                    ticket.admitted = true;
                    drop(st);
                    return GateGuard {
                        gate: self,
                        mode: AdmissionMode::Exclusive,
                    };
                }
            }
            rt.wait(&self.notify, epoch).await;
        }
    }

    /// Releases one admission (`release_view`'s final step).
    ///
    /// # Panics
    /// On unbalanced use — releasing an empty gate, or an exclusive release
    /// with no exclusive holder inside. These checks are always on (not
    /// `debug_assert`): an unbalanced release silently corrupts `P` and
    /// every admission decision after it, so it must fail loudly with the
    /// gate state in the message.
    pub fn release(&self, mode: AdmissionMode) {
        {
            let mut st = self.state.lock();
            assert!(
                st.inside > 0,
                "AdmissionGate::release without a matching acquire \
                 (mode {mode:?}, quota {}, inside {}, exclusive_inside {})",
                st.quota,
                st.inside,
                st.exclusive_inside,
            );
            if mode == AdmissionMode::Exclusive {
                assert!(
                    st.exclusive_inside,
                    "exclusive release but no exclusive holder inside \
                     (quota {}, inside {})",
                    st.quota, st.inside,
                );
                st.exclusive_inside = false;
            }
            st.inside -= 1;
        }
        self.notify.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;
    use votm_sim::{RunStatus, SimConfig, SimExecutor};

    #[test]
    fn try_acquire_respects_quota() {
        let g = AdmissionGate::new(2, 16);
        let a = g.try_acquire().unwrap();
        let b = g.try_acquire().unwrap();
        assert_eq!(a, AdmissionMode::Transactional);
        assert_eq!(b, AdmissionMode::Transactional);
        assert!(g.try_acquire().is_none(), "third entrant must wait");
        g.release(a);
        assert!(g.try_acquire().is_some());
        let _ = b;
    }

    #[test]
    fn quota_one_is_exclusive() {
        let g = AdmissionGate::new(1, 16);
        let a = g.try_acquire().unwrap();
        assert_eq!(a, AdmissionMode::Exclusive);
        assert!(g.try_acquire().is_none());
        g.release(a);
        assert_eq!(g.inside(), 0);
    }

    #[test]
    fn exclusive_waits_for_view_to_drain_after_quota_drop() {
        let g = AdmissionGate::new(4, 16);
        let a = g.try_acquire().unwrap();
        let b = g.try_acquire().unwrap();
        g.set_quota(1);
        assert!(
            g.try_acquire().is_none(),
            "exclusive admission requires an empty view"
        );
        g.release(a);
        assert!(g.try_acquire().is_none(), "still one transactional holder");
        g.release(b);
        assert_eq!(g.try_acquire().unwrap(), AdmissionMode::Exclusive);
    }

    #[test]
    fn transactional_blocked_while_exclusive_inside_after_quota_raise() {
        let g = AdmissionGate::new(1, 16);
        let excl = g.try_acquire().unwrap();
        g.set_quota(8);
        assert!(
            g.try_acquire().is_none(),
            "lock-mode holder must not overlap transactional entrants"
        );
        g.release(excl);
        assert_eq!(g.try_acquire().unwrap(), AdmissionMode::Transactional);
    }

    #[test]
    #[should_panic(expected = "release without a matching acquire")]
    fn unbalanced_release_panics_with_gate_state() {
        let g = AdmissionGate::new(4, 16);
        g.release(AdmissionMode::Transactional);
    }

    #[test]
    #[should_panic(expected = "no exclusive holder inside")]
    fn exclusive_release_without_exclusive_holder_panics() {
        let g = AdmissionGate::new(4, 16);
        let _t = g.try_acquire().unwrap();
        g.release(AdmissionMode::Exclusive);
    }

    #[test]
    fn guard_releases_on_drop_even_through_panic() {
        let gate = Arc::new(AdmissionGate::new(2, 16));
        let mut ex = SimExecutor::new(SimConfig::default());
        {
            let gate = Arc::clone(&gate);
            ex.spawn(move |rt| async move {
                let guard = gate.admit(&rt).await;
                assert_eq!(guard.mode(), AdmissionMode::Transactional);
                rt.charge(10).await;
                // `guard` dropped here: P returns to 0.
            });
        }
        assert_eq!(ex.run().status, RunStatus::Completed);
        assert_eq!(gate.inside(), 0, "guard drop must release admission");

        // The panic path: unwinding out of a scope holding the guard still
        // releases (caught so the test itself survives).
        let gate2 = Arc::clone(&gate);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let mode = gate2.try_acquire().unwrap();
            let _guard = GateGuard { gate: &gate2, mode };
            panic!("unwind while admitted");
        }));
        assert_eq!(gate.inside(), 0, "unwind must not strand P");
    }

    #[test]
    fn exclusive_escalation_drains_and_blocks_new_entrants() {
        let gate = Arc::new(AdmissionGate::new(4, 16));
        let a = gate.try_acquire().unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut ex = SimExecutor::new(SimConfig::default());
        {
            // Escalator: must wait for `a` to leave, then enter exclusively.
            let gate = Arc::clone(&gate);
            let order = Arc::clone(&order);
            ex.spawn(move |rt| async move {
                let guard = gate.acquire_exclusive(&rt).await;
                assert_eq!(guard.mode(), AdmissionMode::Exclusive);
                order.lock().push("escalator");
                rt.charge(50).await;
            });
        }
        {
            // Ordinary entrant arriving later: despite free quota it must
            // queue behind the escalator's drain reservation.
            let gate = Arc::clone(&gate);
            let order = Arc::clone(&order);
            ex.spawn(move |rt| async move {
                rt.charge(5).await; // arrive after the escalator registered
                let _guard = gate.admit(&rt).await;
                order.lock().push("ordinary");
                rt.charge(10).await;
            });
        }
        {
            // Holder `a` leaves at t=20, emptying the view.
            let gate = Arc::clone(&gate);
            ex.spawn(move |rt| async move {
                rt.charge(20).await;
                gate.release(a);
            });
        }
        assert_eq!(ex.run().status, RunStatus::Completed);
        assert_eq!(
            *order.lock(),
            vec!["escalator", "ordinary"],
            "escalator must be admitted first, exclusively"
        );
        assert_eq!(gate.inside(), 0);
        assert_eq!(gate.drain_waiters(), 0);
    }

    #[test]
    fn quota_clamps_to_bounds() {
        let g = AdmissionGate::new(99, 16);
        assert_eq!(g.quota(), 16);
        g.set_quota(0);
        assert_eq!(g.quota(), 1);
        g.set_quota(7);
        assert_eq!(g.quota(), 7);
    }

    #[test]
    fn sim_concurrent_occupancy_never_exceeds_quota() {
        // 16 simulated threads hammering a Q=4 gate; instantaneous occupancy
        // is tracked with an atomic high-water mark.
        let gate = Arc::new(AdmissionGate::new(4, 16));
        let peak = Arc::new(AtomicU32::new(0));
        let inside = Arc::new(AtomicU32::new(0));
        let mut ex = SimExecutor::new(SimConfig::default());
        for _ in 0..16 {
            let gate = Arc::clone(&gate);
            let peak = Arc::clone(&peak);
            let inside = Arc::clone(&inside);
            ex.spawn(move |rt| async move {
                for _ in 0..20 {
                    let mode = gate.acquire(&rt).await;
                    let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    rt.charge(50).await; // dwell inside the view
                    inside.fetch_sub(1, Ordering::SeqCst);
                    gate.release(mode);
                    rt.charge(10).await; // outside work
                }
            });
        }
        let out = ex.run();
        assert_eq!(out.status, RunStatus::Completed);
        assert_eq!(inside.load(Ordering::SeqCst), 0);
        let p = peak.load(Ordering::SeqCst);
        assert!(p <= 4, "occupancy {p} exceeded quota 4");
        assert!(p >= 3, "gate should actually admit concurrency (peak {p})");
    }

    #[test]
    fn sim_quota_one_serialises_completely() {
        let gate = Arc::new(AdmissionGate::new(1, 8));
        let overlap = Arc::new(AtomicU32::new(0));
        let mut ex = SimExecutor::new(SimConfig::default());
        for _ in 0..8 {
            let gate = Arc::clone(&gate);
            let overlap = Arc::clone(&overlap);
            ex.spawn(move |rt| async move {
                for _ in 0..10 {
                    let mode = gate.acquire(&rt).await;
                    assert_eq!(mode, AdmissionMode::Exclusive);
                    assert_eq!(overlap.fetch_add(1, Ordering::SeqCst), 0);
                    rt.charge(30).await;
                    overlap.fetch_sub(1, Ordering::SeqCst);
                    gate.release(mode);
                }
            });
        }
        assert_eq!(ex.run().status, RunStatus::Completed);
    }

    #[test]
    fn real_threads_respect_quota() {
        let gate = Arc::new(AdmissionGate::new(3, 8));
        let peak = Arc::new(AtomicU32::new(0));
        let inside = Arc::new(AtomicU32::new(0));
        let gate2 = Arc::clone(&gate);
        let peak2 = Arc::clone(&peak);
        let inside2 = Arc::clone(&inside);
        votm_sim::run_parallel(8, move |_, rt| {
            let gate = Arc::clone(&gate2);
            let peak = Arc::clone(&peak2);
            let inside = Arc::clone(&inside2);
            async move {
                for _ in 0..50 {
                    let mode = gate.acquire(&rt).await;
                    let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    rt.work(200).await;
                    inside.fetch_sub(1, Ordering::SeqCst);
                    gate.release(mode);
                }
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 3);
        assert_eq!(inside.load(Ordering::SeqCst), 0);
    }
}
