//! The adaptive quota controller (paper Observation 1, Eq. 5).
//!
//! After every completed transaction attempt the owning view calls
//! [`RacController::on_tx_end`]. Once a window's worth of attempts has
//! accumulated, the controller computes the windowed
//! `δ(Q) = cycles_aborted / (cycles_successful · (Q − 1))` and applies:
//!
//! * `δ(Q) > δ_high` ⇒ `Q ← max(1, Q/2)` (relieve contention);
//! * `δ(Q) < δ_low` and `Q < N` ⇒ `Q ← min(N, 2Q)` (recover concurrency);
//!
//! Windows close on *attempts* (commits **plus** aborts), not commits alone
//! — under livelock commits stop entirely and a commit-counted window would
//! never close, which is exactly when adaptation is most urgent.
//!
//! A **cool-down ledger** prevents oscillation: halving away from a quota
//! that exhibited `δ > δ_high` forbids re-raising to it for an exponentially
//! growing number of windows. The paper reports stable settled quotas
//! (Q = 2 for single-view Eigenbench/OrecEagerRedo, Q₁ = 1 multi-view) that
//! the raw halve/double rule alone cannot produce — see DESIGN.md.

use votm_utils::Mutex;

use votm_stm::{StatsSnapshot, TmStats};

use crate::gate::AdmissionGate;

/// Tuning knobs for [`RacController`].
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Transaction attempts (commits + aborts) per evaluation window.
    pub window_attempts: u64,
    /// Halve the quota when windowed δ(Q) exceeds this.
    pub delta_high: f64,
    /// Double the quota when windowed δ(Q) falls below this.
    pub delta_low: f64,
    /// Initial cool-down, in windows, after halving away from a bad quota.
    pub cooldown_initial: u32,
    /// Cool-down ceiling.
    pub cooldown_max: u32,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self {
            window_attempts: 256,
            delta_high: 1.0,
            delta_low: 1.0,
            cooldown_initial: 8,
            cooldown_max: 512,
        }
    }
}

#[derive(Debug)]
struct CtrlState {
    last: StatsSnapshot,
    attempts_into_window: u64,
    /// Lowest quota that recently showed δ > δ_high, with remaining
    /// cool-down windows and the cool-down length to use next time.
    bad_quota: Option<BadQuota>,
    /// Windows spent at each quota, indexed by log₂(Q) — the basis for
    /// [`RacController::dominant_quota`], the "settled Q" the paper's
    /// adaptive tables report (the instantaneous quota at run end can be a
    /// transient upward probe).
    windows_at: [u64; 32],
}

#[derive(Debug, Clone, Copy)]
struct BadQuota {
    quota: u32,
    windows_left: u32,
    next_cooldown: u32,
}

/// One applied quota adjustment, with the evidence behind it — what the
/// observability layer records onto the quota-decision timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuotaDecision {
    /// Quota before the adjustment.
    pub old_q: u32,
    /// Quota after the adjustment (already applied to the gate).
    pub new_q: u32,
    /// The windowed δ(Q) sample that triggered it. `None` for the upward
    /// probe out of lock mode (δ is undefined at Q = 1); may be
    /// `f64::INFINITY` for a zero-commit window.
    pub delta: Option<f64>,
}

/// Windowed δ(Q) estimator + quota policy for one view.
#[derive(Debug)]
pub struct RacController {
    config: ControllerConfig,
    state: Mutex<CtrlState>,
}

impl RacController {
    /// New controller (quota itself lives in the view's [`AdmissionGate`]).
    pub fn new(config: ControllerConfig) -> Self {
        Self {
            config,
            state: Mutex::new(CtrlState {
                last: StatsSnapshot::default(),
                attempts_into_window: 0,
                bad_quota: None,
                windows_at: [0; 32],
            }),
        }
    }

    /// Notifies the controller that one transaction attempt ended (commit or
    /// abort). Cheap unless a window boundary is crossed. Returns the new
    /// quota when an adjustment was made.
    pub fn on_tx_end(&self, gate: &AdmissionGate, stats: &TmStats) -> Option<u32> {
        self.on_tx_end_decision(gate, stats).map(|d| d.new_q)
    }

    /// Like [`RacController::on_tx_end`] but returns the full
    /// [`QuotaDecision`] — old and new quota plus the δ(Q) sample — so the
    /// caller can put the decision on a trace timeline.
    pub fn on_tx_end_decision(
        &self,
        gate: &AdmissionGate,
        stats: &TmStats,
    ) -> Option<QuotaDecision> {
        let mut st = self.state.lock();
        st.attempts_into_window += 1;
        if st.attempts_into_window < self.config.window_attempts {
            return None;
        }
        st.attempts_into_window = 0;
        let snap = stats.snapshot();
        let window = snap.since(&st.last);
        st.last = snap;

        let q = gate.quota();
        let n = gate.max_threads();
        st.windows_at[(31 - q.leading_zeros()) as usize] += 1;
        // Eq. 5, with one extension the paper's formula needs in practice:
        // a window that aborted work but committed *nothing* has δ = ∞ (its
        // denominator is zero). That is precisely the livelock regime RAC
        // exists for, so treat it as "infinitely high contention".
        let delta = match window.delta(q) {
            Some(d) => Some(d),
            None if q > 1 && window.cycles_successful == 0 && window.cycles_aborted > 0 => {
                Some(f64::INFINITY)
            }
            None => None,
        };
        let mut marked_bad = false;

        let decision = match delta {
            Some(d) if d > self.config.delta_high && q > 1 => {
                let target = q / 2;
                // Remember that `q` is bad; escalate its cool-down if we
                // keep being driven away from it.
                let next_cooldown = match st.bad_quota {
                    Some(b) if b.quota <= q => (b.next_cooldown * 2).min(self.config.cooldown_max),
                    _ => self.config.cooldown_initial,
                };
                st.bad_quota = Some(BadQuota {
                    quota: q,
                    windows_left: next_cooldown,
                    next_cooldown,
                });
                marked_bad = true;
                gate.set_quota(target);
                Some(QuotaDecision {
                    old_q: q,
                    new_q: target,
                    delta: Some(d),
                })
            }
            Some(d) if d < self.config.delta_low && q < n => {
                let target = (q * 2).min(n);
                let blocked = st
                    .bad_quota
                    .is_some_and(|bad| target >= bad.quota && bad.windows_left > 0);
                if blocked {
                    None // recently proven bad; hold position
                } else {
                    gate.set_quota(target);
                    Some(QuotaDecision {
                        old_q: q,
                        new_q: target,
                        delta: Some(d),
                    })
                }
            }
            None if q == 1 => {
                // δ is undefined at Q = 1 (paper: "N/A"). Probe upward once
                // the cool-down on Q = 2 has expired; a fresh failure will
                // re-halve with a doubled cool-down, so a genuinely
                // contended view spends almost all its time locked.
                match st.bad_quota {
                    Some(bad) if bad.quota <= 2 && bad.windows_left > 0 => None,
                    _ => {
                        let target = 2.min(n);
                        if target > 1 {
                            gate.set_quota(target);
                            Some(QuotaDecision {
                                old_q: q,
                                new_q: target,
                                delta: None,
                            })
                        } else {
                            None
                        }
                    }
                }
            }
            _ => None,
        };

        // Tick the cool-down ledger at the end of the window, so a quota
        // marked bad in this window keeps its full cool-down.
        if !marked_bad {
            if let Some(bad) = &mut st.bad_quota {
                if bad.windows_left > 0 {
                    bad.windows_left -= 1;
                }
            }
        }
        decision
    }

    /// The controller's configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// The quota the view spent most completed windows at — the "settled Q"
    /// reported in the paper's adaptive tables. `None` before the first
    /// window closes.
    pub fn dominant_quota(&self) -> Option<u32> {
        let st = self.state.lock();
        st.windows_at
            .iter()
            .enumerate()
            .filter(|(_, &w)| w > 0)
            .max_by_key(|(_, &w)| w)
            .map(|(i, _)| 1u32 << i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(window: u64) -> ControllerConfig {
        ControllerConfig {
            window_attempts: window,
            ..Default::default()
        }
    }

    /// Feeds one window of synthetic stats and closes it.
    fn feed_window(
        ctrl: &RacController,
        gate: &AdmissionGate,
        stats: &TmStats,
        commits: u64,
        commit_cycles: u64,
        aborts: u64,
        abort_cycles: u64,
    ) -> Option<u32> {
        for _ in 0..commits {
            stats.record_commit(0, commit_cycles / commits.max(1));
        }
        for _ in 0..aborts {
            stats.record_abort(
                0,
                abort_cycles / aborts.max(1),
                votm_stm::AbortReason::OrecConflict,
            );
        }
        let mut last = None;
        for _ in 0..ctrl.config().window_attempts {
            if let Some(q) = ctrl.on_tx_end(gate, stats) {
                last = Some(q);
            }
        }
        last
    }

    #[test]
    fn high_delta_halves_quota() {
        let gate = AdmissionGate::new(16, 16);
        let stats = TmStats::new();
        let ctrl = RacController::new(cfg(16));
        // delta(16) = 100_000 / (1_000 * 15) ≈ 6.7 > 1
        let q = feed_window(&ctrl, &gate, &stats, 10, 1_000, 50, 100_000);
        assert_eq!(q, Some(8));
        assert_eq!(gate.quota(), 8);
    }

    #[test]
    fn repeated_high_delta_reaches_lock_mode() {
        let gate = AdmissionGate::new(16, 16);
        let stats = TmStats::new();
        let ctrl = RacController::new(cfg(16));
        for _ in 0..4 {
            feed_window(&ctrl, &gate, &stats, 5, 1_000, 100, 1_000_000);
        }
        assert_eq!(gate.quota(), 1, "16 -> 8 -> 4 -> 2 -> 1");
    }

    #[test]
    fn low_delta_doubles_quota_up_to_n() {
        let gate = AdmissionGate::new(2, 16);
        let stats = TmStats::new();
        let ctrl = RacController::new(cfg(16));
        for _ in 0..5 {
            feed_window(&ctrl, &gate, &stats, 100, 1_000_000, 1, 10);
        }
        assert_eq!(gate.quota(), 16, "2 -> 4 -> 8 -> 16, capped at N");
    }

    #[test]
    fn cooldown_blocks_oscillation() {
        let gate = AdmissionGate::new(4, 16);
        let stats = TmStats::new();
        let ctrl = RacController::new(cfg(16));
        // Window 1: δ(4) high ⇒ halve to 2, mark 4 bad.
        feed_window(&ctrl, &gate, &stats, 5, 1_000, 100, 1_000_000);
        assert_eq!(gate.quota(), 2);
        // Window 2: δ(2) low ⇒ would double back to 4, but 4 is cooling
        // down.
        let q = feed_window(&ctrl, &gate, &stats, 100, 1_000_000, 1, 10);
        assert_eq!(q, None);
        assert_eq!(gate.quota(), 2, "cool-down must hold the quota at 2");
    }

    #[test]
    fn cooldown_expires_and_allows_reprobe() {
        let mut config = cfg(16);
        config.cooldown_initial = 2;
        let gate = AdmissionGate::new(4, 16);
        let stats = TmStats::new();
        let ctrl = RacController::new(config);
        feed_window(&ctrl, &gate, &stats, 5, 1_000, 100, 1_000_000); // 4 -> 2
        feed_window(&ctrl, &gate, &stats, 100, 1_000_000, 1, 10); // held
        feed_window(&ctrl, &gate, &stats, 100, 1_000_000, 1, 10); // held/expiring
        let q = feed_window(&ctrl, &gate, &stats, 100, 1_000_000, 1, 10);
        assert_eq!(q, Some(4), "after cool-down the controller re-probes");
    }

    #[test]
    fn lock_mode_probes_upward_after_cooldown() {
        let mut config = cfg(16);
        config.cooldown_initial = 1;
        let gate = AdmissionGate::new(2, 16);
        let stats = TmStats::new();
        let ctrl = RacController::new(config);
        // Drive to Q=1.
        feed_window(&ctrl, &gate, &stats, 5, 1_000, 100, 1_000_000);
        assert_eq!(gate.quota(), 1);
        // δ undefined at 1; after the cool-down a probe to 2 happens.
        feed_window(&ctrl, &gate, &stats, 100, 1_000_000, 0, 0); // cooling
        let q = feed_window(&ctrl, &gate, &stats, 100, 1_000_000, 0, 0);
        assert_eq!(q, Some(2));
        // Bad again ⇒ back to 1 with doubled cool-down.
        feed_window(&ctrl, &gate, &stats, 5, 1_000, 100, 1_000_000);
        assert_eq!(gate.quota(), 1);
    }

    #[test]
    fn no_adjustment_without_a_full_window() {
        let gate = AdmissionGate::new(16, 16);
        let stats = TmStats::new();
        let ctrl = RacController::new(cfg(1000));
        stats.record_abort(0, 1_000_000, votm_stm::AbortReason::OrecConflict);
        stats.record_commit(0, 10);
        for _ in 0..999 {
            assert_eq!(ctrl.on_tx_end(&gate, &stats), None);
        }
        assert_eq!(gate.quota(), 16);
    }

    #[test]
    fn delta_exactly_one_holds_position() {
        let gate = AdmissionGate::new(4, 16);
        let stats = TmStats::new();
        let ctrl = RacController::new(cfg(16));
        // delta(4) = 3000 / (1000 * 3) = 1.0: neither > high nor < low.
        let q = feed_window(&ctrl, &gate, &stats, 10, 1_000, 10, 3_000);
        assert_eq!(q, None);
        assert_eq!(gate.quota(), 4);
    }
}
