//! Monte-Carlo validation of the binomial abort model.
//!
//! The paper derives `E[time(Tᵢ)] = (Q−1)/(N−1)·cᵢdᵢ + tᵢ` by arguing that
//! each of the `cᵢ` potential conflicts materialises independently with
//! probability `(Q−1)/(N−1)` (the chance the conflicting transaction is
//! co-scheduled under quota `Q`). This module samples that process directly
//! — draw `k ~ Binomial(cᵢ, (Q−1)/(N−1))`, pay `k·dᵢ + tᵢ` — and checks the
//! closed forms against the empirical mean. It is the model-level mirror of
//! what the full simulator does at the STM-protocol level.

use votm_utils::XorShift64;

use crate::{makespan_rac, scale, TxParams};

/// One sampled execution of a transaction set under RAC.
///
/// `c` is rounded to an integer trial count (the model treats `cᵢ` as an
/// expected value; we require integral `cᵢ` here so the binomial is exact).
pub fn sample_makespan(txs: &[TxParams], q: u32, n: u32, rng: &mut XorShift64) -> f64 {
    assert!(n >= 2 && (1..=n).contains(&q));
    let p = scale(q, n);
    let total: f64 = txs
        .iter()
        .map(|tx| {
            let trials = tx.c.round() as u64;
            let mut k = 0u64;
            for _ in 0..trials {
                // Bernoulli(p) via 53-bit uniform.
                let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                if u < p {
                    k += 1;
                }
            }
            k as f64 * tx.d + tx.t
        })
        .sum();
    total / f64::from(q)
}

/// Empirical mean makespan over `runs` samples.
pub fn mean_makespan(txs: &[TxParams], q: u32, n: u32, runs: u32, seed: u64) -> f64 {
    let mut rng = XorShift64::new(seed);
    let mut acc = 0.0;
    for _ in 0..runs {
        acc += sample_makespan(txs, q, n, &mut rng);
    }
    acc / f64::from(runs)
}

/// Relative error of the closed-form Eq. 2 against the empirical mean.
pub fn closed_form_relative_error(txs: &[TxParams], q: u32, n: u32, runs: u32, seed: u64) -> f64 {
    let analytic = makespan_rac(txs, q, n);
    let empirical = mean_makespan(txs, q, n, runs, seed);
    ((analytic - empirical) / analytic.max(f64::MIN_POSITIVE)).abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_set() -> Vec<TxParams> {
        vec![
            TxParams::new(10.0, 4.0, 3.0),
            TxParams::new(25.0, 2.0, 10.0),
            TxParams::new(5.0, 8.0, 2.0),
            TxParams::new(40.0, 0.0, 0.0),
        ]
    }

    #[test]
    fn closed_form_matches_sampling_within_one_percent() {
        let txs = mixed_set();
        for q in [2u32, 4, 8, 16] {
            let err = closed_form_relative_error(&txs, q, 16, 20_000, 7);
            assert!(err < 0.01, "q={q}: relative error {err}");
        }
    }

    #[test]
    fn q_equals_one_is_deterministic_serial() {
        let txs = mixed_set();
        let mut rng = XorShift64::new(1);
        let m = sample_makespan(&txs, 1, 16, &mut rng);
        assert_eq!(m, 80.0, "no aborts, sum of t_i");
    }

    #[test]
    fn sampled_aborts_grow_with_quota() {
        let txs = vec![TxParams::new(1.0, 20.0, 5.0); 8];
        let low = mean_makespan(&txs, 2, 16, 5_000, 3);
        let high = mean_makespan(&txs, 16, 16, 5_000, 3);
        // More admitted threads => more materialised conflicts per tx; with
        // c·d >> t the per-thread waste dominates the added parallelism.
        assert!(
            high > low,
            "expected contention collapse: Q=16 {high} vs Q=2 {low}"
        );
    }
}
