//! The RAC theoretical model (paper §II-A), implemented exactly as the
//! equations are stated, plus a Monte-Carlo validator of the binomial abort
//! model behind them.
//!
//! Notation: a transaction `Tᵢ` has duration `tᵢ` (conflict-free time from
//! start to commit), expected abort count `cᵢ` under conventional TM with
//! `N` threads, and mean time per aborted attempt `dᵢ`.
//!
//! * Eq. 1 — `makespan_tm`: conventional TM, `(Σ cᵢdᵢ + tᵢ) / N`.
//! * Eq. 2 — `makespan_rac`: with quota `Q`, expected aborts scale by
//!   `(Q−1)/(N−1)`, and only `Q` threads run: `(Σ (Q−1)/(N−1)·cᵢdᵢ + tᵢ)/Q`.
//! * Eq. 3 — `makespan_gap`: the closed form of
//!   `makespan_rac − makespan_tm`, whose sign is governed by
//!   `δ = Σcᵢdᵢ / (Σtᵢ·(N−1))` ([`delta_ratio`], Observation 1(a)/(b)).
//! * Eq. 4/5 — windowed `δ(Q)` from measured cycles ([`delta_measured`]).
//! * Eq. 6–13 — the multiple-view decomposition ([`makespan_multi_view`],
//!   [`makespan_single_view_pair`]) behind Observation 2.

#![warn(missing_docs)]

pub mod montecarlo;

/// One transaction's model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TxParams {
    /// `tᵢ`: conflict-free duration (cycles, or any unit).
    pub t: f64,
    /// `cᵢ`: expected number of aborts under conventional TM (N threads).
    pub c: f64,
    /// `dᵢ`: mean time wasted per aborted attempt.
    pub d: f64,
}

impl TxParams {
    /// Convenience constructor.
    pub fn new(t: f64, c: f64, d: f64) -> Self {
        debug_assert!(t >= 0.0 && c >= 0.0 && d >= 0.0);
        Self { t, c, d }
    }
}

/// Σ cᵢdᵢ over the set.
pub fn total_abort_work(txs: &[TxParams]) -> f64 {
    txs.iter().map(|x| x.c * x.d).sum()
}

/// Σ tᵢ over the set.
pub fn total_useful_work(txs: &[TxParams]) -> f64 {
    txs.iter().map(|x| x.t).sum()
}

/// Eq. 1: best-possible makespan under conventional TM with `n` threads.
pub fn makespan_tm(txs: &[TxParams], n: u32) -> f64 {
    assert!(n >= 1);
    (total_abort_work(txs) + total_useful_work(txs)) / f64::from(n)
}

/// The expected execution time of one transaction under RAC with quota `q`:
/// `(q−1)/(n−1) · cᵢdᵢ + tᵢ` (derived in §II-A1 from the binomial abort
/// distribution).
pub fn expected_tx_time_rac(tx: TxParams, q: u32, n: u32) -> f64 {
    assert!(n >= 2 && (1..=n).contains(&q));
    scale(q, n) * tx.c * tx.d + tx.t
}

/// The abort-scaling factor `(q−1)/(n−1)`.
pub fn scale(q: u32, n: u32) -> f64 {
    f64::from(q - 1) / f64::from(n - 1)
}

/// Eq. 2: makespan under RAC with quota `q` out of `n` threads.
pub fn makespan_rac(txs: &[TxParams], q: u32, n: u32) -> f64 {
    assert!(n >= 2 && (1..=n).contains(&q));
    let total: f64 = txs.iter().map(|&tx| expected_tx_time_rac(tx, q, n)).sum();
    total / f64::from(q)
}

/// Eq. 3 closed form: `Δ = makespan_rac − makespan_tm =
/// (1/(N−1)) (1/N − 1/Q) (Σcᵢdᵢ − Σtᵢ(N−1))`.
pub fn makespan_gap(txs: &[TxParams], q: u32, n: u32) -> f64 {
    assert!(n >= 2 && (1..=n).contains(&q));
    let a = total_abort_work(txs);
    let t = total_useful_work(txs);
    (1.0 / f64::from(n - 1))
        * (1.0 / f64::from(n) - 1.0 / f64::from(q))
        * (a - t * f64::from(n - 1))
}

/// `δ = Σcᵢdᵢ / (Σtᵢ (N−1))` — Observation 1's decision quantity.
/// `δ > 1` ⇒ RAC with some `Q < N` beats conventional TM.
pub fn delta_ratio(txs: &[TxParams], n: u32) -> f64 {
    assert!(n >= 2);
    total_abort_work(txs) / (total_useful_work(txs) * f64::from(n - 1))
}

/// Eq. 5: the runtime estimate of δ(Q) from measured cycle totals.
/// Returns `None` for `q ≤ 1` (the paper's "N/A") or an idle window.
pub fn delta_measured(cycles_aborted: u64, cycles_successful: u64, q: u32) -> Option<f64> {
    if q <= 1 || cycles_successful == 0 {
        return None;
    }
    Some(cycles_aborted as f64 / (cycles_successful as f64 * f64::from(q - 1)))
}

/// Observation 1 as a decision procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuotaAdvice {
    /// δ(Q) > 1: decrease Q.
    Decrease,
    /// δ(Q) < 1: increase Q.
    Increase,
    /// δ(Q) = 1 (or unmeasurable): hold.
    Hold,
}

/// Applies Observation 1 to a measured δ(Q).
pub fn observation1(delta_q: Option<f64>) -> QuotaAdvice {
    match delta_q {
        Some(d) if d > 1.0 => QuotaAdvice::Decrease,
        Some(d) if d < 1.0 => QuotaAdvice::Increase,
        _ => QuotaAdvice::Hold,
    }
}

/// Exhaustive optimal quota under the model: the `q ∈ [1, n]` minimising
/// Eq. 2 (`q = 1` is evaluated as a pure serial run: no aborts, Σtᵢ).
pub fn optimal_quota(txs: &[TxParams], n: u32) -> (u32, f64) {
    assert!(n >= 2);
    let mut best = (1u32, total_useful_work(txs));
    for q in 2..=n {
        let m = makespan_rac(txs, q, n);
        if m < best.1 {
            best = (q, m);
        }
    }
    best
}

/// Eq. 11: makespan of two views under independent RAC quotas — the two
/// views are accessed by disjoint transaction subsets, so the total is the
/// sum of the per-view makespans.
pub fn makespan_multi_view(s1: &[TxParams], q1: u32, s2: &[TxParams], q2: u32, n: u32) -> f64 {
    makespan_rac(s1, q1, n) + makespan_rac(s2, q2, n)
}

/// Eq. 12 (via the Eq. 7 decomposition): a single view holding both objects
/// under one shared quota `q`.
pub fn makespan_single_view_pair(s1: &[TxParams], s2: &[TxParams], q: u32, n: u32) -> f64 {
    makespan_rac(s1, q, n) + makespan_rac(s2, q, n)
}

/// Observation 2, checkable form: given a high-contention subset `s1`
/// (δ₁ > 1) and a low-contention subset `s2` (δ₂ ≤ 1), and quotas
/// `q1 ≤ q ≤ q2`, the multi-view makespan is no worse than the single-view
/// one. Returns `(multi, single)` for inspection.
pub fn observation2_pair(
    s1: &[TxParams],
    q1: u32,
    s2: &[TxParams],
    q2: u32,
    q: u32,
    n: u32,
) -> (f64, f64) {
    (
        makespan_multi_view(s1, q1, s2, q2, n),
        makespan_single_view_pair(s1, s2, q, n),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(count: usize, t: f64, c: f64, d: f64) -> Vec<TxParams> {
        vec![TxParams::new(t, c, d); count]
    }

    #[test]
    fn eq1_simple_case() {
        // 4 transactions, t=10, c=2, d=5 -> total = 4*(10+10) = 80; N=4 -> 20.
        let txs = uniform(4, 10.0, 2.0, 5.0);
        assert_eq!(makespan_tm(&txs, 4), 20.0);
    }

    #[test]
    fn eq2_reduces_to_eq1_at_q_equals_n() {
        let txs = uniform(7, 12.0, 3.0, 4.0);
        let n = 8;
        assert!((makespan_rac(&txs, n, n) - makespan_tm(&txs, n)).abs() < 1e-9);
    }

    #[test]
    fn eq3_matches_direct_difference() {
        let txs = vec![
            TxParams::new(10.0, 4.0, 3.0),
            TxParams::new(20.0, 1.0, 8.0),
            TxParams::new(5.0, 0.0, 0.0),
        ];
        let n = 16;
        for q in 2..=n {
            let direct = makespan_rac(&txs, q, n) - makespan_tm(&txs, n);
            let closed = makespan_gap(&txs, q, n);
            assert!(
                (direct - closed).abs() < 1e-9,
                "q={q}: direct {direct} vs closed {closed}"
            );
        }
    }

    #[test]
    fn observation1a_high_delta_means_rac_wins() {
        // delta > 1: huge abort work relative to useful work.
        let txs = uniform(8, 1.0, 10.0, 100.0);
        let n = 16;
        assert!(delta_ratio(&txs, n) > 1.0);
        for q in 2..n {
            assert!(
                makespan_gap(&txs, q, n) < 0.0,
                "RAC with q={q} should beat TM"
            );
        }
    }

    #[test]
    fn observation1b_low_delta_means_tm_wins() {
        let txs = uniform(8, 100.0, 0.5, 2.0);
        let n = 16;
        assert!(delta_ratio(&txs, n) <= 1.0);
        for q in 2..n {
            assert!(makespan_gap(&txs, q, n) >= 0.0);
        }
        // And at q = n the gap closes exactly.
        assert!(makespan_gap(&txs, n, n).abs() < 1e-12);
    }

    #[test]
    fn advice_matches_delta() {
        assert_eq!(observation1(Some(2.0)), QuotaAdvice::Decrease);
        assert_eq!(observation1(Some(0.5)), QuotaAdvice::Increase);
        assert_eq!(observation1(Some(1.0)), QuotaAdvice::Hold);
        assert_eq!(observation1(None), QuotaAdvice::Hold);
    }

    #[test]
    fn eq5_matches_definition() {
        assert_eq!(delta_measured(300, 100, 4), Some(1.0));
        assert_eq!(delta_measured(300, 100, 1), None);
        assert_eq!(delta_measured(300, 0, 4), None);
    }

    #[test]
    fn optimal_quota_degenerates_sensibly() {
        let n = 16;
        // Contention-free: optimum is N.
        let free = uniform(16, 10.0, 0.0, 0.0);
        assert_eq!(optimal_quota(&free, n).0, n);
        // Pathological contention: optimum is 1.
        let hot = uniform(16, 1.0, 50.0, 50.0);
        assert_eq!(optimal_quota(&hot, n).0, 1);
    }

    #[test]
    fn eq7_decomposition_is_exact() {
        // makespan_rac(S1 ∪ S2, q) = makespan_rac(S1, q) + makespan_rac(S2, q)
        let s1 = uniform(5, 3.0, 6.0, 9.0);
        let s2 = uniform(9, 17.0, 0.2, 1.0);
        let mut all = s1.clone();
        all.extend_from_slice(&s2);
        let n = 16;
        for q in 2..=n {
            let lhs = makespan_rac(&all, q, n);
            let rhs = makespan_rac(&s1, q, n) + makespan_rac(&s2, q, n);
            assert!((lhs - rhs).abs() < 1e-9);
        }
    }

    #[test]
    fn observation2_multi_view_never_worse() {
        let n = 16;
        // View 1: high contention (delta1 > 1); view 2: low contention.
        let s1 = uniform(8, 1.0, 20.0, 50.0);
        let s2 = uniform(8, 50.0, 0.1, 1.0);
        assert!(delta_ratio(&s1, n) > 1.0);
        assert!(delta_ratio(&s2, n) <= 1.0);
        let (q1_opt, _) = optimal_quota(&s1, n);
        for q in q1_opt.max(2)..=n {
            let (multi, single) = observation2_pair(&s1, q1_opt, &s2, n, q, n);
            assert!(
                multi <= single + 1e-9,
                "q={q}: multi {multi} > single {single}"
            );
        }
    }
}
