//! Property-based tests of the RAC model: the paper's algebra must hold for
//! *all* transaction sets, not just the worked examples.

use proptest::prelude::*;
use votm_model::*;

fn tx_strategy() -> impl Strategy<Value = TxParams> {
    (0.1f64..1000.0, 0.0f64..50.0, 0.0f64..100.0)
        .prop_map(|(t, c, d)| TxParams::new(t, c, d))
}

fn set_strategy() -> impl Strategy<Value = Vec<TxParams>> {
    proptest::collection::vec(tx_strategy(), 1..40)
}

/// Rescales abort durations so the set has δ > 1 at `n` threads (random
/// sets almost never do for large N, so construct rather than filter).
fn make_hot(mut txs: Vec<TxParams>, n: u32) -> Vec<TxParams> {
    if total_abort_work(&txs) <= 0.0 {
        txs.push(TxParams::new(1.0, 5.0, 5.0));
    }
    let target = total_useful_work(&txs) * f64::from(n - 1) * 1.5;
    let factor = target / total_abort_work(&txs);
    for tx in &mut txs {
        tx.d *= factor.max(1e-12);
    }
    txs
}

/// Rescales abort durations so the set has δ ≤ 1 at `n` threads.
fn make_cold(mut txs: Vec<TxParams>, n: u32) -> Vec<TxParams> {
    let a = total_abort_work(&txs);
    if a <= 0.0 {
        return txs;
    }
    let target = total_useful_work(&txs) * f64::from(n - 1) * 0.5;
    let factor = (target / a).min(1.0);
    for tx in &mut txs {
        tx.d *= factor;
    }
    txs
}

proptest! {
    /// Eq. 3's closed form equals the direct difference of Eq. 2 − Eq. 1.
    #[test]
    fn eq3_closed_form_is_exact(txs in set_strategy(), n in 2u32..64, qsel in 0u32..64) {
        let q = 1 + qsel % n;
        let direct = makespan_rac(&txs, q, n) - makespan_tm(&txs, n);
        let closed = makespan_gap(&txs, q, n);
        let tol = 1e-9 * (1.0 + direct.abs().max(closed.abs()));
        prop_assert!((direct - closed).abs() <= tol);
    }

    /// Observation 1(a): δ > 1 ⇒ RAC (any Q < N) strictly beats TM.
    #[test]
    fn obs1a_sign(txs in set_strategy(), n in 2u32..64, qsel in 0u32..64) {
        let q = 1 + qsel % (n - 1); // q in [1, n-1]
        let txs = make_hot(txs, n);
        prop_assert!(delta_ratio(&txs, n) > 1.0);
        prop_assert!(makespan_gap(&txs, q, n) < 0.0);
    }

    /// Observation 1(b): δ ≤ 1 ⇒ restricting admission cannot help.
    #[test]
    fn obs1b_sign(txs in set_strategy(), n in 2u32..64, qsel in 0u32..64) {
        let q = 1 + qsel % n;
        prop_assume!(delta_ratio(&txs, n) <= 1.0);
        prop_assert!(makespan_gap(&txs, q, n) >= -1e-9);
    }

    /// Δ vanishes at Q = N: RAC with full quota *is* conventional TM.
    #[test]
    fn gap_zero_at_full_quota(txs in set_strategy(), n in 2u32..64) {
        let gap = makespan_gap(&txs, n, n);
        prop_assert!(gap.abs() <= 1e-9 * (1.0 + makespan_tm(&txs, n)));
    }

    /// Eq. 7: per-view decomposition of the single-view makespan is exact
    /// for any partition of the transaction set.
    #[test]
    fn eq7_partition_decomposition(
        s1 in set_strategy(),
        s2 in set_strategy(),
        n in 2u32..64,
        qsel in 0u32..64,
    ) {
        let q = 1 + qsel % n;
        let mut all = s1.clone();
        all.extend_from_slice(&s2);
        let lhs = makespan_rac(&all, q, n);
        let rhs = makespan_rac(&s1, q, n) + makespan_rac(&s2, q, n);
        prop_assert!((lhs - rhs).abs() <= 1e-9 * (1.0 + lhs.abs()));
    }

    /// Observation 2 (Eq. 13): with δ₁ > 1, δ₂ ≤ 1 and Q₁ ≤ Q ≤ Q₂,
    /// independent per-view quotas are never worse than one shared quota.
    #[test]
    fn obs2_multi_view_dominates(
        s1 in set_strategy(),
        s2 in set_strategy(),
        n in 2u32..32,
        a in 0u32..32,
        b in 0u32..32,
        c in 0u32..32,
    ) {
        let s1 = make_hot(s1, n);
        let s2 = make_cold(s2, n);
        prop_assert!(delta_ratio(&s1, n) > 1.0);
        prop_assert!(delta_ratio(&s2, n) <= 1.0 + 1e-9);
        // Draw q1 <= q <= q2 from [1, n].
        let mut qs = [1 + a % n, 1 + b % n, 1 + c % n];
        qs.sort_unstable();
        let (q1, q, q2) = (qs[0], qs[1], qs[2]);
        let (multi, single) = observation2_pair(&s1, q1, &s2, q2, q, n);
        prop_assert!(
            multi <= single + 1e-9 * (1.0 + single.abs()),
            "multi {multi} > single {single} (q1={q1}, q={q}, q2={q2}, n={n})"
        );
    }

    /// Monotonicity behind Observation 1: when δ > 1 the makespan is
    /// increasing in Q (so decreasing Q always helps), and when δ < 1 it is
    /// decreasing in Q.
    #[test]
    fn makespan_monotone_in_quota(txs in set_strategy(), n in 3u32..32) {
        let d = delta_ratio(&txs, n);
        prop_assume!((d - 1.0).abs() > 1e-6);
        for q in 2..n {
            let m_lo = makespan_rac(&txs, q, n);
            let m_hi = makespan_rac(&txs, q + 1, n);
            if d > 1.0 {
                prop_assert!(m_hi >= m_lo - 1e-9, "δ>1 but makespan fell: Q={q}");
            } else {
                prop_assert!(m_hi <= m_lo + 1e-9, "δ<1 but makespan rose: Q={q}");
            }
        }
    }

    /// The Monte-Carlo sampler agrees with Eq. 2 (integral abort counts so
    /// the binomial is exact; loose 5% tolerance for 4k samples).
    #[test]
    fn monte_carlo_agrees_with_closed_form(
        seed in 1u64..10_000,
        n in 2u32..17,
        qsel in 0u32..16,
        raw in proptest::collection::vec((1.0f64..50.0, 0u32..10, 0.5f64..20.0), 1..8),
    ) {
        let q = 1 + qsel % n;
        let txs: Vec<TxParams> = raw
            .into_iter()
            .map(|(t, c, d)| TxParams::new(t, f64::from(c), d))
            .collect();
        let analytic = makespan_rac(&txs, q, n);
        let empirical = votm_model::montecarlo::mean_makespan(&txs, q, n, 4_000, seed);
        let err = (analytic - empirical).abs() / analytic.max(1e-9);
        prop_assert!(err < 0.05, "relative error {err} (analytic {analytic}, mc {empirical})");
    }
}

#[test]
fn observation1_monotonicity_implies_convergence_of_halving() {
    // The paper's halve/double rule terminates: starting from any Q and
    // repeatedly applying Observation 1 with the model's makespans reaches a
    // fixed point within log2(N) steps for a set whose delta doesn't
    // straddle 1.
    let hot: Vec<TxParams> = vec![TxParams::new(1.0, 30.0, 30.0); 8];
    let n = 16;
    let mut q = n;
    for _ in 0..8 {
        let d = if q > 1 {
            // model-level delta(Q): abort work scaled to Q vs useful work.
            let aborted = total_abort_work(&hot) * scale(q, n);
            let useful = total_useful_work(&hot);
            aborted / (useful * f64::from(q - 1))
        } else {
            0.0
        };
        match observation1(if q > 1 { Some(d) } else { None }) {
            QuotaAdvice::Decrease => q = (q / 2).max(1),
            QuotaAdvice::Increase => break,
            QuotaAdvice::Hold => break,
        }
    }
    assert_eq!(q, 1, "hot set should drive the quota to lock mode");
}
