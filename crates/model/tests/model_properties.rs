//! Property-based tests of the RAC model: the paper's algebra must hold for
//! *all* transaction sets, not just the worked examples. Cases come from a
//! fixed-seed PRNG (a few hundred random sets per property), so failures
//! replay exactly.

use votm_model::*;
use votm_utils::XorShift64;

/// Uniform f64 in `[lo, hi)` with 53 bits of entropy.
fn f64_in(rng: &mut XorShift64, lo: f64, hi: f64) -> f64 {
    let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
    lo + (hi - lo) * unit
}

fn random_tx(rng: &mut XorShift64) -> TxParams {
    TxParams::new(
        f64_in(rng, 0.1, 1000.0),
        f64_in(rng, 0.0, 50.0),
        f64_in(rng, 0.0, 100.0),
    )
}

fn random_set(rng: &mut XorShift64) -> Vec<TxParams> {
    (0..1 + rng.next_index(39))
        .map(|_| random_tx(rng))
        .collect()
}

/// Rescales abort durations so the set has δ > 1 at `n` threads (random
/// sets almost never do for large N, so construct rather than filter).
fn make_hot(mut txs: Vec<TxParams>, n: u32) -> Vec<TxParams> {
    if total_abort_work(&txs) <= 0.0 {
        txs.push(TxParams::new(1.0, 5.0, 5.0));
    }
    let target = total_useful_work(&txs) * f64::from(n - 1) * 1.5;
    let factor = target / total_abort_work(&txs);
    for tx in &mut txs {
        tx.d *= factor.max(1e-12);
    }
    txs
}

/// Rescales abort durations so the set has δ ≤ 1 at `n` threads.
fn make_cold(mut txs: Vec<TxParams>, n: u32) -> Vec<TxParams> {
    let a = total_abort_work(&txs);
    if a <= 0.0 {
        return txs;
    }
    let target = total_useful_work(&txs) * f64::from(n - 1) * 0.5;
    let factor = (target / a).min(1.0);
    for tx in &mut txs {
        tx.d *= factor;
    }
    txs
}

/// Eq. 3's closed form equals the direct difference of Eq. 2 − Eq. 1.
#[test]
fn eq3_closed_form_is_exact() {
    let mut rng = XorShift64::new(0x0003_0de1_0001);
    for _case in 0..256 {
        let txs = random_set(&mut rng);
        let n = 2 + rng.next_below(62) as u32;
        let q = 1 + rng.next_below(u64::from(n)) as u32;
        let direct = makespan_rac(&txs, q, n) - makespan_tm(&txs, n);
        let closed = makespan_gap(&txs, q, n);
        let tol = 1e-9 * (1.0 + direct.abs().max(closed.abs()));
        assert!((direct - closed).abs() <= tol, "n={n} q={q}");
    }
}

/// Observation 1(a): δ > 1 ⇒ RAC (any Q < N) strictly beats TM.
#[test]
fn obs1a_sign() {
    let mut rng = XorShift64::new(0x0003_0de1_0002);
    for _case in 0..256 {
        let n = 2 + rng.next_below(62) as u32;
        let q = 1 + rng.next_below(u64::from(n - 1)) as u32; // q in [1, n-1]
        let txs = make_hot(random_set(&mut rng), n);
        assert!(delta_ratio(&txs, n) > 1.0);
        assert!(makespan_gap(&txs, q, n) < 0.0, "n={n} q={q}");
    }
}

/// Observation 1(b): δ ≤ 1 ⇒ restricting admission cannot help.
#[test]
fn obs1b_sign() {
    let mut rng = XorShift64::new(0x0003_0de1_0003);
    let mut checked = 0u32;
    for _case in 0..1024 {
        let txs = random_set(&mut rng);
        let n = 2 + rng.next_below(62) as u32;
        let q = 1 + rng.next_below(u64::from(n)) as u32;
        if delta_ratio(&txs, n) > 1.0 {
            continue;
        }
        checked += 1;
        assert!(makespan_gap(&txs, q, n) >= -1e-9, "n={n} q={q}");
    }
    assert!(checked >= 64, "too few δ ≤ 1 samples ({checked})");
}

/// Δ vanishes at Q = N: RAC with full quota *is* conventional TM.
#[test]
fn gap_zero_at_full_quota() {
    let mut rng = XorShift64::new(0x0003_0de1_0004);
    for _case in 0..256 {
        let txs = random_set(&mut rng);
        let n = 2 + rng.next_below(62) as u32;
        let gap = makespan_gap(&txs, n, n);
        assert!(gap.abs() <= 1e-9 * (1.0 + makespan_tm(&txs, n)), "n={n}");
    }
}

/// Eq. 7: per-view decomposition of the single-view makespan is exact
/// for any partition of the transaction set.
#[test]
fn eq7_partition_decomposition() {
    let mut rng = XorShift64::new(0x0003_0de1_0005);
    for _case in 0..256 {
        let s1 = random_set(&mut rng);
        let s2 = random_set(&mut rng);
        let n = 2 + rng.next_below(62) as u32;
        let q = 1 + rng.next_below(u64::from(n)) as u32;
        let mut all = s1.clone();
        all.extend_from_slice(&s2);
        let lhs = makespan_rac(&all, q, n);
        let rhs = makespan_rac(&s1, q, n) + makespan_rac(&s2, q, n);
        assert!((lhs - rhs).abs() <= 1e-9 * (1.0 + lhs.abs()), "n={n} q={q}");
    }
}

/// Observation 2 (Eq. 13): with δ₁ > 1, δ₂ ≤ 1 and Q₁ ≤ Q ≤ Q₂,
/// independent per-view quotas are never worse than one shared quota.
#[test]
fn obs2_multi_view_dominates() {
    let mut rng = XorShift64::new(0x0003_0de1_0006);
    for _case in 0..256 {
        let n = 2 + rng.next_below(30) as u32;
        let s1 = make_hot(random_set(&mut rng), n);
        let s2 = make_cold(random_set(&mut rng), n);
        assert!(delta_ratio(&s1, n) > 1.0);
        assert!(delta_ratio(&s2, n) <= 1.0 + 1e-9);
        // Draw q1 <= q <= q2 from [1, n].
        let mut qs = [
            1 + rng.next_below(u64::from(n)) as u32,
            1 + rng.next_below(u64::from(n)) as u32,
            1 + rng.next_below(u64::from(n)) as u32,
        ];
        qs.sort_unstable();
        let (q1, q, q2) = (qs[0], qs[1], qs[2]);
        let (multi, single) = observation2_pair(&s1, q1, &s2, q2, q, n);
        assert!(
            multi <= single + 1e-9 * (1.0 + single.abs()),
            "multi {multi} > single {single} (q1={q1}, q={q}, q2={q2}, n={n})"
        );
    }
}

/// Monotonicity behind Observation 1: when δ > 1 the makespan is
/// increasing in Q (so decreasing Q always helps), and when δ < 1 it is
/// decreasing in Q.
#[test]
fn makespan_monotone_in_quota() {
    let mut rng = XorShift64::new(0x0003_0de1_0007);
    for _case in 0..256 {
        let txs = random_set(&mut rng);
        let n = 3 + rng.next_below(29) as u32;
        let d = delta_ratio(&txs, n);
        if (d - 1.0).abs() <= 1e-6 {
            continue;
        }
        for q in 2..n {
            let m_lo = makespan_rac(&txs, q, n);
            let m_hi = makespan_rac(&txs, q + 1, n);
            if d > 1.0 {
                assert!(m_hi >= m_lo - 1e-9, "δ>1 but makespan fell: Q={q}");
            } else {
                assert!(m_hi <= m_lo + 1e-9, "δ<1 but makespan rose: Q={q}");
            }
        }
    }
}

/// The Monte-Carlo sampler agrees with Eq. 2 (integral abort counts so
/// the binomial is exact; loose 5% tolerance for 4k samples).
#[test]
fn monte_carlo_agrees_with_closed_form() {
    let mut rng = XorShift64::new(0x0003_0de1_0008);
    for _case in 0..40 {
        let seed = 1 + rng.next_below(9_999);
        let n = 2 + rng.next_below(15) as u32;
        let q = 1 + rng.next_below(u64::from(n)) as u32;
        let txs: Vec<TxParams> = (0..1 + rng.next_index(7))
            .map(|_| {
                TxParams::new(
                    f64_in(&mut rng, 1.0, 50.0),
                    f64::from(rng.next_below(10) as u32),
                    f64_in(&mut rng, 0.5, 20.0),
                )
            })
            .collect();
        let analytic = makespan_rac(&txs, q, n);
        let empirical = votm_model::montecarlo::mean_makespan(&txs, q, n, 4_000, seed);
        let err = (analytic - empirical).abs() / analytic.max(1e-9);
        assert!(
            err < 0.05,
            "relative error {err} (analytic {analytic}, mc {empirical})"
        );
    }
}

#[test]
fn observation1_monotonicity_implies_convergence_of_halving() {
    // The paper's halve/double rule terminates: starting from any Q and
    // repeatedly applying Observation 1 with the model's makespans reaches a
    // fixed point within log2(N) steps for a set whose delta doesn't
    // straddle 1.
    let hot: Vec<TxParams> = vec![TxParams::new(1.0, 30.0, 30.0); 8];
    let n = 16;
    let mut q = n;
    for _ in 0..8 {
        let d = if q > 1 {
            // model-level delta(Q): abort work scaled to Q vs useful work.
            let aborted = total_abort_work(&hot) * scale(q, n);
            let useful = total_useful_work(&hot);
            aborted / (useful * f64::from(q - 1))
        } else {
            0.0
        };
        match observation1(if q > 1 { Some(d) } else { None }) {
            QuotaAdvice::Decrease => q = (q / 2).max(1),
            QuotaAdvice::Increase => break,
            QuotaAdvice::Hold => break,
        }
    }
    assert_eq!(q, 1, "hot set should drive the quota to lock mode");
}
