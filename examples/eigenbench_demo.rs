//! Runs a scaled-down version of the paper's modified two-view Eigenbench
//! across the four program versions (single-view / multi-view / multi-TM /
//! TM) and both STM algorithms, printing a comparison like Tables VI and X.
//!
//! ```text
//! cargo run --release --example eigenbench_demo [scale]
//! ```
//!
//! `scale` defaults to 0.0005 (50 loops per thread per view); 1.0 is the
//! paper's full size.

use votm_repro::eigenbench::{run_sim, EigenConfig, Version};
use votm_repro::sim::{RunStatus, SimConfig};
use votm_repro::votm::{QuotaMode, TmAlgorithm};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.0005);
    let config = EigenConfig::paper_table2(scale);
    println!(
        "Eigenbench (Table II params, {} loops/thread/view, N={})\n",
        config.view1.loops, config.n_threads
    );

    for algo in TmAlgorithm::ALL {
        println!("--- VOTM-{} ---", algo.name());
        // Anchor the livelock watchdog at the lock-mode makespan.
        let baseline = run_sim(
            &config,
            algo,
            Version::SingleView,
            [QuotaMode::Fixed(1), QuotaMode::Fixed(1)],
            SimConfig::default(),
        )
        .outcome
        .vtime;
        for version in Version::ALL {
            let res = run_sim(
                &config,
                algo,
                version,
                [QuotaMode::Adaptive, QuotaMode::Adaptive],
                SimConfig {
                    vtime_cap: Some(baseline * 16),
                    ..Default::default()
                },
            );
            let quotas: Vec<u32> = res.views.iter().map(|v| v.quota).collect();
            let aborts: u64 = res.views.iter().map(|v| v.tm.aborts).sum();
            match res.outcome.status {
                RunStatus::Completed => println!(
                    "{:12} makespan {:>10} cycles, Q={:?}, aborts {}",
                    version.name(),
                    res.outcome.vtime,
                    quotas,
                    aborts
                ),
                other => println!("{:12} {:?}", version.name(), other),
            }
        }
        println!();
    }
    println!("eigenbench_demo OK");
}
