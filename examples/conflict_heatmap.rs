//! Conflict-topology profiling, end to end: a *single-view* workload with
//! two structurally independent hot regions runs under the flight recorder,
//! and the profiler mines the event stream into (a) a per-address-bucket
//! abort heatmap and (b) a co-access affinity matrix whose suggested
//! bi-partition is exactly the two-view split a VOTM programmer would have
//! written by hand — the paper's Observation 2 ("objects never accessed
//! together belong in separate views") recovered from telemetry alone.
//!
//! ```text
//! cargo run --release --example conflict_heatmap
//! ```

use std::sync::Arc;

use votm_repro::obs::ConflictProfile;
use votm_repro::sim::{SimConfig, SimExecutor};
use votm_repro::votm::{Addr, FlightRecorder, QuotaMode, TmAlgorithm, Votm};

/// Heap words; with 64 profile buckets each bucket covers 64 words.
const HEAP_WORDS: u32 = 4096;
/// Words each half's transactions range over (index reads).
const HALF: u32 = HEAP_WORDS / 2;
/// Hot-array words per half — the conflict magnets.
const HOT: u64 = 48;

fn main() {
    const N: u32 = 16;
    let recorder = Arc::new(FlightRecorder::new(N as usize, 1 << 16));
    let sys = Votm::builder()
        .algo(TmAlgorithm::OrecEagerRedo)
        .threads(N)
        .recorder(Arc::clone(&recorder))
        .build();
    // One view holding BOTH structures — the "before" a profiler exists to
    // diagnose. Even threads hammer the lower half, odd threads the upper;
    // no transaction ever touches both halves.
    let view = sys.create_view(HEAP_WORDS as usize, QuotaMode::Fixed(N));
    let mut ex = SimExecutor::new(SimConfig::default());
    for t in 0..u64::from(N) {
        let view = Arc::clone(&view);
        ex.spawn(move |rt| async move {
            let mut rng = votm_repro::utils::XorShift64::new(t + 1);
            let base = if t % 2 == 0 { 0 } else { HALF };
            for _ in 0..150 {
                view.transact(&rt, async |tx| {
                    // A few scattered index reads across this half…
                    for _ in 0..4 {
                        let a = Addr(base + rng.next_below(u64::from(HALF)) as u32);
                        tx.read(a).await?;
                    }
                    // …then read-modify-writes on the half's hot array.
                    for _ in 0..6 {
                        let a = Addr(base + rng.next_below(HOT) as u32);
                        let v = tx.read(a).await?;
                        tx.write(a, v + 1).await?;
                    }
                    Ok(())
                })
                .await;
            }
        });
    }
    let out = ex.run();
    let stats = view.stats();
    println!(
        "single view, N={N}: {:?} in {} virtual cycles — {} commits, {} aborts, \
         waste_frac {:.3}",
        out.status,
        out.vtime,
        stats.tm.commits,
        stats.tm.aborts,
        stats.tm.waste_frac(),
    );

    let profile = ConflictProfile::from_traces(&recorder.snapshot());
    println!(
        "\nprofiler: {} aborts attributed, {} wasted cycles, footprints {} committed / {} aborted",
        profile.aborts_total,
        profile.abort_cycles_total,
        profile.committed_footprints,
        profile.aborted_footprints,
    );

    // Top-10 conflicting address buckets, by wasted cycles.
    let mut hot: Vec<(usize, &_)> = profile
        .buckets
        .iter()
        .enumerate()
        .filter(|(_, r)| r.aborts > 0)
        .collect();
    hot.sort_by_key(|&(i, r)| (u64::MAX - r.wasted_cycles, i));
    let top = &hot[..hot.len().min(10)];
    let peak = top.first().map_or(1, |(_, r)| r.wasted_cycles.max(1));
    println!(
        "\ntop {} conflicting buckets (of {} with aborts):",
        top.len(),
        hot.len()
    );
    println!("{:>6} {:>8} {:>14}  heat", "bucket", "aborts", "wasted_cyc");
    for (i, r) in top {
        let bar = "#".repeat(((r.wasted_cycles * 40) / peak).max(1) as usize);
        println!("{i:>6} {:>8} {:>14}  {bar}", r.aborts, r.wasted_cycles);
    }

    // The affinity miner's verdict: how separable is this workload, and
    // along which line?
    let part = profile.suggest_bipartition();
    println!(
        "\nsuggested bi-partition (separability {:.3}, cut affinity {}, internal {}):",
        part.separability, part.cut_affinity, part.internal_affinity,
    );
    for s in [0u8, 1] {
        let buckets = part.side_buckets(s);
        println!(
            "  view {s}: {} buckets {:?}{}",
            buckets.len(),
            &buckets[..buckets.len().min(8)],
            if buckets.len() > 8 { " …" } else { "" },
        );
    }
    let half_bucket = 32;
    let clean = part.side_buckets(0).iter().all(|&b| b < half_bucket)
        != part.side_buckets(0).iter().all(|&b| b >= half_bucket);
    println!(
        "\n{}",
        if clean && part.cut_affinity == 0 {
            "=> the miner recovered the hand partition: split this view at the heap midpoint."
        } else {
            "=> partition differs from the structural split — inspect the affinity matrix."
        }
    );
}
