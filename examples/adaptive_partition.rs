//! Online automatic view partitioning, end to end: the same two-hot-region
//! workload as `conflict_heatmap`, but instead of printing a suggested
//! bi-partition for a programmer to apply, an `AdaptiveDomain` applies it
//! *live* — the repartition controller folds the flight-recorder profile,
//! waits out its hysteresis, drains the view behind the exclusive barrier,
//! and splits it at the mined boundary while transactions keep running.
//! The run starts as ONE view and is compared against a hand-partitioned
//! twin (two statically created views), the layout the paper's
//! Observation 2 says a VOTM programmer should have written.
//!
//! ```text
//! cargo run --release --example adaptive_partition
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use votm_repro::sim::{SimConfig, SimExecutor};
use votm_repro::utils::SplitMix64;
use votm_repro::votm::{Addr, FlightRecorder, QuotaMode, RepartitionPolicy, TmAlgorithm, Votm};

/// Domain heap words; with 64 route buckets each bucket covers 64 words.
const HEAP_WORDS: usize = 4096;
/// Word span each group's transactions range over.
const SPAN: u64 = 96;
/// Second group's base address (heap midpoint — bucket 32).
const GROUP_B: u64 = 2048;
const THREADS: usize = 8;
const OPS: usize = 250;

/// Virtual-time throughput of one run: transactions per virtual second.
fn tps(commits: u64, vtime: u64) -> f64 {
    commits as f64 / (vtime as f64 / 2.5e9)
}

/// The hand-partitioned twin: two views created up front, one per group.
/// Offsets are drawn from the same seeded stream as the adaptive run.
fn run_hand(seed: u64) -> (u64, u64) {
    let sys = Votm::builder()
        .algo(TmAlgorithm::NOrec)
        .threads(THREADS as u32)
        .build();
    let views = [
        sys.create_view(HEAP_WORDS / 2, QuotaMode::Fixed(THREADS as u32)),
        sys.create_view(HEAP_WORDS / 2, QuotaMode::Fixed(THREADS as u32)),
    ];
    let mut seeds = SplitMix64::new(seed);
    let mut ex = SimExecutor::new(SimConfig {
        seed,
        ..Default::default()
    });
    for t in 0..THREADS {
        let view = Arc::clone(&views[t % 2]);
        let mut rng = seeds.derive();
        ex.spawn(move |rt| async move {
            for _ in 0..OPS {
                let addrs: Vec<u32> = (0..3).map(|_| rng.next_below(SPAN) as u32).collect();
                view.transact(&rt, async |tx| {
                    for &a in &addrs {
                        let v = tx.read(Addr(a)).await?;
                        tx.write(Addr(a), v + 1).await?;
                    }
                    Ok(())
                })
                .await;
            }
        });
    }
    let out = ex.run();
    let commits: u64 = views.iter().map(|v| v.stats().tm.commits).sum();
    (commits, out.vtime)
}

fn main() {
    let seed = 7;
    let (hand_commits, hand_vtime) = run_hand(seed);
    let hand_tps = tps(hand_commits, hand_vtime);
    println!(
        "hand-partitioned twin (2 views, N={THREADS}): {hand_commits} commits in \
         {hand_vtime} virtual cycles = {hand_tps:.1} txns/vsec"
    );

    // The adaptive run: ONE view over the whole heap, controller live.
    let recorder = Arc::new(FlightRecorder::new(THREADS + 1, 1 << 14));
    let sys = Votm::builder()
        .algo(TmAlgorithm::NOrec)
        .threads(THREADS as u32)
        .recorder(Arc::clone(&recorder))
        .build();
    let domain = sys.create_domain(
        HEAP_WORDS,
        QuotaMode::Fixed(THREADS as u32),
        RepartitionPolicy {
            interval: 1 << 13,
            cooldown: 1 << 15,
            min_separability: 0.6,
            min_waste_share: 0.01,
            min_aborts: 8,
            merge_cross_threshold: 8,
            max_views: 4,
        },
    );
    let remaining = Arc::new(AtomicUsize::new(THREADS));
    let mut seeds = SplitMix64::new(seed);
    let mut ex = SimExecutor::new(SimConfig {
        seed,
        ..Default::default()
    });
    for t in 0..THREADS {
        let domain = Arc::clone(&domain);
        let remaining = Arc::clone(&remaining);
        let mut rng = seeds.derive();
        let base = if t % 2 == 0 { 0 } else { GROUP_B };
        ex.spawn(move |rt| async move {
            for _ in 0..OPS {
                let addrs: Vec<u32> = (0..3)
                    .map(|_| (base + rng.next_below(SPAN)) as u32)
                    .collect();
                domain
                    .transact(&rt, Addr(addrs[0]), async |tx| {
                        for &a in &addrs {
                            let v = tx.read(Addr(a)).await?;
                            tx.write(Addr(a), v + 1).await?;
                        }
                        Ok(())
                    })
                    .await;
            }
            remaining.fetch_sub(1, Ordering::AcqRel);
        });
    }
    {
        let domain = Arc::clone(&domain);
        let remaining = Arc::clone(&remaining);
        ex.spawn(move |rt| async move {
            domain.run_controller(&rt, &remaining).await;
        });
    }
    let out = ex.run();
    let stats = domain.stats();
    let commits: u64 = domain.views().iter().map(|v| v.stats().tm.commits).sum();
    let adaptive_tps = tps(commits, out.vtime);
    println!(
        "\nadaptive domain (started as 1 view): {commits} commits in {} virtual cycles = \
         {adaptive_tps:.1} txns/vsec",
        out.vtime
    );
    println!(
        "controller: {} split(s), {} merge(s), {} drain cycles inside barriers, \
         {} straddling txns, route epoch {}",
        stats.splits, stats.merges, stats.split_drain_cycles, stats.straddles, stats.route_epoch
    );

    // Where did the controller draw the line? Summarise the route table.
    let route = domain.route().snapshot();
    let moved: Vec<usize> = route
        .iter()
        .enumerate()
        .filter(|&(_, &v)| v != route[0])
        .map(|(i, _)| i)
        .collect();
    println!(
        "route: {} live views; buckets moved off view {}: {:?}",
        stats.live_views,
        route[0],
        &moved[..moved.len().min(8)],
    );

    let ratio = adaptive_tps / hand_tps;
    println!(
        "\nconverged to {ratio:.3}x hand-partitioned throughput {}",
        if stats.splits >= 1 && ratio >= 0.90 {
            "=> the controller recovered the hand partition live (gate: >= 0.90x)."
        } else {
            "=> below the 0.90x convergence gate — inspect the profile hysteresis."
        }
    );
}
