//! Chaos demo: a shared-counter workload rides out a deterministic storm of
//! injected faults — forced aborts, random delays, and mid-transaction
//! panics that kill whole logical threads — and the final audit proves the
//! views stayed consistent through all of it.
//!
//! ```text
//! cargo run --release --example fault_storm
//! ```
//!
//! Every run is reproducible: the fault schedule is derived from the seeds
//! printed in the banner, so a surprising outcome can be replayed exactly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use votm_repro::sim::{FaultPlan, PanicPolicy, RunStatus, SimConfig, SimExecutor};
use votm_repro::votm::{Addr, QuotaMode, TmAlgorithm, Votm};

const THREADS: u64 = 8;
const ITERS: u64 = 200;

fn storm(algo: TmAlgorithm, sim_seed: u64, fault_seed: u64) {
    let sys = Votm::builder()
        .algo(algo)
        .threads(THREADS as u32)
        // Starvation watchdog on: even a storm of forced aborts cannot
        // starve a transaction past 8 consecutive losses.
        .escalate_after(Some(8))
        .build();
    let view = sys.create_view(256, QuotaMode::Adaptive);

    // The attempted counter tracks loop iterations that ran to completion;
    // a panic mid-transaction kills the whole logical thread, so its
    // remaining iterations simply never happen.
    let attempted = Arc::new(AtomicU64::new(0));

    let mut ex = SimExecutor::new(SimConfig {
        seed: sim_seed,
        // Survive injected panics: the dead task's transaction is rolled
        // back by the drop guards and everyone else keeps going.
        panic_policy: PanicPolicy::Isolate,
        fault_plan: Some(FaultPlan {
            seed: fault_seed,
            abort_percent: 10,
            delay_percent: 15,
            max_delay: 500,
            panic_percent: 1,
            max_panics: 3,
            ..Default::default()
        }),
        ..Default::default()
    });
    for _ in 0..THREADS {
        let view = Arc::clone(&view);
        let attempted = Arc::clone(&attempted);
        ex.spawn(move |rt| async move {
            for _ in 0..ITERS {
                view.transact(&rt, async |tx| {
                    let v = tx.read(Addr(0)).await?;
                    tx.local_work(2, 0, 20).await;
                    tx.write(Addr(0), v + 1).await
                })
                .await;
                attempted.fetch_add(1, Ordering::Relaxed);
            }
        });
    }
    let out = ex.run();
    assert_eq!(out.status, RunStatus::Completed);

    let count = view.heap().load(Addr(0));
    let survived = attempted.load(Ordering::Relaxed);
    let s = view.stats();
    println!("  {algo:?}:");
    println!(
        "    injected     : {} forced aborts, {} delays ({} cycles), {} panics",
        out.faults.aborts, out.faults.delays, out.faults.delay_cycles, out.faults.panics
    );
    println!(
        "    survived     : {survived}/{} iterations across {} tasks ({} killed by panic)",
        THREADS * ITERS,
        THREADS,
        out.faults.tasks_killed_by_panic
    );
    println!(
        "    view stats   : {} commits, {} aborts, max abort streak {}, {} escalations",
        s.tm.commits, s.tm.aborts, s.tm.max_abort_streak, s.tm.escalations
    );

    // Conservation audit: the counter equals the committed increments —
    // one per surviving iteration, plus at most one for each panicked task
    // whose crash landed *after* its commit finished (the mid-commit drop
    // guard completes such commits rather than tearing them).
    assert!(
        out.faults.aborts > 0,
        "storm injected no aborts — raise the rates"
    );
    assert_eq!(s.tm.commits, count, "commit count must match the counter");
    assert!(
        count >= survived && count <= survived + out.faults.tasks_killed_by_panic,
        "conservation violated: counter {count}, surviving iterations {survived}"
    );
    assert_eq!(view.gate().inside(), 0, "admission must drain to zero");
    println!("    audit        : counter {count} consistent, gate drained — OK");
}

fn main() {
    // Injected panics are part of the show; replace the default hook's
    // backtrace spew with a one-line note per crash.
    std::panic::set_hook(Box::new(|info| {
        println!(
            "    !! task crashed: {}",
            info.payload_as_str().unwrap_or("panic")
        );
    }));

    let (sim_seed, fault_seed) = (2026, 0xfa17);
    println!("fault storm (sim seed {sim_seed}, fault seed {fault_seed})");
    for algo in [
        TmAlgorithm::NOrec,
        TmAlgorithm::OrecEagerRedo,
        TmAlgorithm::OrecLazy,
    ] {
        storm(algo, sim_seed, fault_seed);
    }
    println!("fault_storm OK");
}
