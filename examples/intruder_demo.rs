//! Runs the Intruder port end to end: generates attack-seeded flows,
//! processes the packet stream through the transactional queue + dictionary
//! pipeline, and reports detection results plus the single-view vs
//! multi-view makespans (the paper's NOrec headline: splitting the views
//! relieves global-clock contention).
//!
//! ```text
//! cargo run --release --example intruder_demo [flows]
//! ```

use std::sync::Arc;

use votm_repro::intruder::{generate, run_sim, GenConfig, Version};
use votm_repro::sim::SimConfig;
use votm_repro::votm::{QuotaMode, TmAlgorithm};

fn main() {
    let flows: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(512);
    let input = Arc::new(generate(&GenConfig {
        attack_percent: 10,
        max_length: 128,
        flows,
        seed: 1,
    }));
    println!(
        "intruder: {} flows, {} packets, {} attacks injected\n",
        input.flows,
        input.packets.len(),
        input.attacks_injected
    );

    for algo in TmAlgorithm::ALL {
        println!("--- VOTM-{} (adaptive RAC, N=16) ---", algo.name());
        let mut results = Vec::new();
        for version in [Version::SingleView, Version::MultiView] {
            let res = run_sim(
                &input,
                16,
                algo,
                version,
                [QuotaMode::Adaptive, QuotaMode::Adaptive],
                SimConfig::default(),
            );
            assert_eq!(res.flows_processed, input.flows, "flows lost");
            assert_eq!(res.attacks_found, input.attacks_injected, "missed attacks");
            assert_eq!(res.checksum_errors, 0, "reassembly corruption");
            println!(
                "{:12} makespan {:>10} cycles, attacks found {}/{}",
                version.name(),
                res.outcome.vtime,
                res.attacks_found,
                input.attacks_injected
            );
            results.push(res.outcome.vtime);
        }
        println!(
            "multi-view speedup over single-view: {:.2}x\n",
            results[0] as f64 / results[1] as f64
        );
    }
    println!("intruder_demo OK");
}
