//! Contention-management demo: an adversarial starvation duel, replayed
//! under every pluggable policy.
//!
//! One long transaction (task 0) must write-lock four hot words and then
//! hold them through a long computation. Four short transactions camp on
//! those words — one each, in a tight increment loop — and a targeted
//! fault plan injects a delay after *every* one of the victim's
//! operations, so it arrives late to every lock race. Under the default
//! backoff policy the victim starves: it aborts, retries, and loses the
//! race forever while the shorts commit freely. The priority policies
//! resolve each encounter in the victim's favour (it is the oldest, the
//! karma-richest, or inside its winning window), so the same adversary
//! costs it only a bounded abort streak.
//!
//! ```text
//! cargo run --release --example starvation_duel
//! ```
//!
//! Deterministic: same seeds, same duel, byte-for-byte — rerun to replay.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use votm_repro::sim::{FaultPlan, RunStatus, SimConfig, SimExecutor};
use votm_repro::votm::{AbortReason, Addr, CmPolicy, QuotaMode, TmAlgorithm, Votm};

/// Hot words the victim must lock; one camping short per word.
const HOT_WORDS: u64 = 4;
/// Work the victim repeats before touching shared state on every attempt.
const PRE_WORK: u64 = 500;
/// The victim's long hold after acquiring its write set.
const VICTIM_WORK: u64 = 20_000;
/// One camper's lock-hold time per transaction.
const SHORT_WORK: u64 = 600;
/// Virtual-time budget: the starving legs stop here.
const DUEL_CAP: u64 = 4_000_000;

struct Outcome {
    status: RunStatus,
    victim_attempts: u64,
    victim_committed: bool,
    commits: u64,
    aborts: u64,
    cm_kills: u64,
    max_streak: u64,
}

fn duel(policy: CmPolicy, seed: u64) -> Outcome {
    let n_threads = (1 + HOT_WORDS) as u32;
    let sys = Votm::builder()
        .algo(TmAlgorithm::OrecEagerRedo)
        .threads(n_threads)
        .policy(policy)
        .build();
    let view = sys.create_view(64, QuotaMode::Fixed(n_threads));
    let done = Arc::new(AtomicBool::new(false));
    let attempts = Arc::new(AtomicU64::new(0));

    let mut ex = SimExecutor::new(SimConfig {
        seed,
        vtime_cap: Some(DUEL_CAP),
        fault_plan: Some(FaultPlan {
            seed: seed ^ 0x0051_eed5,
            delay_percent: 100,
            max_delay: 600,
            target_task: Some(0),
            ..Default::default()
        }),
        ..Default::default()
    });

    // Task 0: the victim. Blind writes, so its conflicts are encounter
    // locks with a live holder — the kind a contention manager arbitrates.
    {
        let view = Arc::clone(&view);
        let done = Arc::clone(&done);
        let attempts = Arc::clone(&attempts);
        ex.spawn(move |rt| async move {
            view.transact(&rt, async |tx| {
                attempts.fetch_add(1, Ordering::Relaxed);
                tx.local_work(0, 0, PRE_WORK).await;
                for w in 0..HOT_WORDS {
                    tx.write(Addr(w as u32), 1_000_000 + w).await?;
                }
                tx.local_work(0, 0, VICTIM_WORK).await;
                Ok(())
            })
            .await;
            done.store(true, Ordering::Relaxed);
        });
    }
    // The campers: short increment loops, one per hot word, until the
    // victim gets through (or the cap ends the run).
    for k in 0..HOT_WORDS {
        let view = Arc::clone(&view);
        let done = Arc::clone(&done);
        ex.spawn(move |rt| async move {
            let w = Addr(k as u32);
            while !done.load(Ordering::Relaxed) {
                view.transact(&rt, async |tx| {
                    let v = tx.read(w).await?;
                    tx.write(w, v + 1).await?;
                    tx.local_work(0, 0, SHORT_WORK).await;
                    Ok(())
                })
                .await;
            }
        });
    }

    let out = ex.run();
    let s = view.stats().tm;
    Outcome {
        status: out.status,
        victim_attempts: attempts.load(Ordering::Relaxed),
        victim_committed: done.load(Ordering::Relaxed),
        commits: s.commits,
        aborts: s.aborts,
        cm_kills: s.aborts_by_reason[AbortReason::CmKilled.index()],
        max_streak: s.max_abort_streak,
    }
}

fn main() {
    let seed = 3u64;
    println!("starvation duel (seed {seed}): one long transaction vs {HOT_WORDS} campers");
    println!(
        "  victim: {PRE_WORK} pre-work + {HOT_WORDS} hot writes + {VICTIM_WORK} hold, \
         every op delayed by a targeted fault plan"
    );
    println!("  campers: read-increment-hold({SHORT_WORK}) loops, one per hot word\n");
    println!(
        "  {:<16} {:<10} {:>8} {:>9} {:>9} {:>9} {:>9} {:>7}",
        "policy", "outcome", "attempts", "commits", "aborts", "cm-kills", "streak", "victim"
    );
    let mut starved = 0u32;
    let mut rescued = 0u32;
    for policy in CmPolicy::ALL {
        let o = duel(policy, seed);
        let outcome = match o.status {
            RunStatus::Completed => "completed",
            RunStatus::Livelock => "livelock",
            other => {
                panic!("{policy:?}: unexpected {other:?}");
            }
        };
        println!(
            "  {:<16} {:<10} {:>8} {:>9} {:>9} {:>9} {:>9} {:>7}",
            policy.name(),
            outcome,
            o.victim_attempts,
            o.commits,
            o.aborts,
            o.cm_kills,
            o.max_streak,
            if o.victim_committed {
                "commit"
            } else {
                "starved"
            },
        );
        if o.victim_committed {
            rescued += 1;
        } else {
            starved += 1;
        }
    }
    println!();
    assert!(starved >= 1, "the backoff leg must demonstrate starvation");
    assert!(
        rescued >= 3,
        "the priority policies must rescue the victim (got {rescued})"
    );
    println!("starvation_duel OK: {starved} starving leg(s), {rescued} rescued leg(s)");
}
