//! Quickstart: the paper's linked-list example (Figures 1 and 2) in VOTM.
//!
//! Creates a view holding a sorted linked list, then has four logical
//! threads insert into it concurrently under RAC-managed admission.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use votm_repro::ds::TxList;
use votm_repro::sim::{SimConfig, SimExecutor};
use votm_repro::votm::{QuotaMode, TmAlgorithm, Votm};

fn main() {
    // A VOTM system running NOrec with up to 4 threads.
    let sys = Votm::builder().algo(TmAlgorithm::NOrec).threads(4).build();

    // create_view: 4096 words, RAC manages the admission quota (the paper's
    // `create_view(vid, size, 0)` — a third argument < 1 means dynamic).
    let view = sys.create_view(4096, QuotaMode::Adaptive);

    // ll_init: allocate the list head inside the view.
    let list = TxList::create(&view);

    // Four logical threads insert interleaved ranges.
    let mut ex = SimExecutor::new(SimConfig::default());
    for t in 0..4u64 {
        let view = Arc::clone(&view);
        ex.spawn(move |rt| async move {
            for i in 0..10u64 {
                let key = i * 4 + t; // 0..40, interleaved across threads
                                     // acquire_view .. release_view, with automatic retry:
                view.transact(&rt, async |tx| list.insert(tx, key).await)
                    .await;
            }
        });
    }
    let out = ex.run();

    // Read the final list back in a read-only acquisition (acquire_Rview).
    let mut ex2 = SimExecutor::new(SimConfig::default());
    let view2 = Arc::clone(&view);
    ex2.spawn(move |rt| async move {
        let keys = view2
            .transact_ro(&rt, async |tx| list.to_vec(tx).await)
            .await;
        println!("sorted list ({} keys): {:?}", keys.len(), keys);
        assert_eq!(keys, (0..40).collect::<Vec<u64>>());
    });
    ex2.run();

    let stats = view.stats();
    println!(
        "makespan: {} virtual cycles; commits: {}, aborts: {}, settled Q: {}",
        out.vtime, stats.tm.commits, stats.tm.aborts, stats.quota
    );
    println!("quickstart OK");
}
