//! The paper's headline phenomenon, end to end: an encounter-time-locking
//! STM livelocks on a hot, write-heavy view — and RAC rescues it by
//! throttling the admission quota.
//!
//! ```text
//! cargo run --release --example livelock_rescue
//! ```

use std::sync::Arc;

use votm_repro::sim::{RunStatus, SimConfig, SimExecutor};
use votm_repro::votm::{Addr, QuotaMode, TmAlgorithm, Votm};

fn hot_run(quota: QuotaMode, cap: u64) -> (RunStatus, u64, u64, u32) {
    let sys = Votm::builder()
        .algo(TmAlgorithm::OrecEagerRedo)
        .threads(16)
        .build();
    let view = sys.create_view(64, quota);
    let mut ex = SimExecutor::new(SimConfig {
        vtime_cap: Some(cap),
        ..Default::default()
    });
    for t in 0..16u64 {
        let view = Arc::clone(&view);
        ex.spawn(move |rt| async move {
            let mut rng = votm_repro::utils::XorShift64::new(t + 1);
            for _ in 0..50 {
                view.transact(&rt, async |tx| {
                    // Long transactions, dense write-write conflicts.
                    for _ in 0..16 {
                        let a = Addr(rng.next_below(16) as u32);
                        let v = tx.read(a).await?;
                        tx.write(a, v + 1).await?;
                    }
                    Ok(())
                })
                .await;
            }
        });
    }
    let out = ex.run();
    let s = view.stats();
    (out.status, out.vtime, s.tm.aborts, s.quota)
}

fn main() {
    const CAP: u64 = 5_000_000;

    let (status, vtime, aborts, _) = hot_run(QuotaMode::Unrestricted, CAP);
    println!("no admission control : {status:?} after {vtime} cycles, {aborts} aborts");
    assert_eq!(
        status,
        RunStatus::Livelock,
        "expected the hot view to livelock"
    );

    let (status, vtime, aborts, q) = hot_run(QuotaMode::Adaptive, CAP);
    println!(
        "adaptive RAC         : {status:?} at {vtime} cycles, {aborts} aborts, settled Q = {q}"
    );
    assert_eq!(status, RunStatus::Completed, "RAC must ensure progress");

    let (status, vtime, _, _) = hot_run(QuotaMode::Fixed(1), CAP);
    println!("lock mode (Q = 1)    : {status:?} at {vtime} cycles (uninstrumented)");
    println!("livelock_rescue OK");
}
