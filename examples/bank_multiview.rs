//! Observation 2 on a bank: a hot audit-counter object and a large, cold
//! accounts object that are never touched in the same transaction.
//!
//! * single view ⇒ RAC can only throttle *everything* when the counter gets
//!   hot;
//! * two views ⇒ the counter view collapses to near-lock-mode while the
//!   accounts view keeps full concurrency — and total makespan drops.
//!
//! ```text
//! cargo run --release --example bank_multiview
//! ```

use std::sync::Arc;

use votm_repro::sim::{SimConfig, SimExecutor};
use votm_repro::votm::{Addr, QuotaMode, TmAlgorithm, View, Votm};

const THREADS: u64 = 8;
const ACCOUNTS: u64 = 4096;
const OPS: u64 = 240;

/// Runs the workload; `views` holds (counter_view, accounts_view) — equal
/// for the single-view setup.
fn run(counter: Arc<View>, accounts: Arc<View>, counter_base: u32, accounts_base: u32) -> u64 {
    let mut ex = SimExecutor::new(SimConfig::default());
    for t in 0..THREADS {
        let counter = Arc::clone(&counter);
        let accounts = Arc::clone(&accounts);
        ex.spawn(move |rt| async move {
            let mut rng = votm_repro::utils::XorShift64::new(t + 1);
            for i in 0..OPS {
                if i % 2 == 0 {
                    // Hot: bump the shared audit counters (tiny object,
                    // every thread collides).
                    counter
                        .transact(&rt, async |tx| {
                            // Long transaction over a small hot object: many
                            // random reads plus several random updates, so a
                            // concurrent commit almost always invalidates the
                            // read set and the whole attempt's work is wasted
                            // (the delta > 1 regime of Observation 1).
                            let mut acc = 0u64;
                            for k in 0..24u32 {
                                let a = Addr(counter_base + rng.next_below(64) as u32);
                                acc = acc.wrapping_add(tx.read(a).await?);
                                tx.local_work(0, 0, 30).await;
                                if k % 3 == 0 {
                                    let w = Addr(counter_base + rng.next_below(64) as u32);
                                    tx.write(w, acc).await?;
                                }
                            }
                            Ok(())
                        })
                        .await;
                } else {
                    // Cold: transfer between two random accounts.
                    let from = rng.next_below(ACCOUNTS) as u32;
                    let to = rng.next_below(ACCOUNTS) as u32;
                    accounts
                        .transact(&rt, async |tx| {
                            let a = tx.read(Addr(accounts_base + from)).await?;
                            let b = tx.read(Addr(accounts_base + to)).await?;
                            // Fraud/limit checks: real computation that a
                            // needlessly-serialised view would waste.
                            tx.local_work(4, 0, 600).await;
                            tx.write(Addr(accounts_base + from), a.wrapping_sub(1))
                                .await?;
                            tx.write(Addr(accounts_base + to), b.wrapping_add(1))
                                .await?;
                            Ok(())
                        })
                        .await;
                }
            }
        });
    }
    ex.run().vtime
}

fn main() {
    let algo = TmAlgorithm::OrecEagerRedo;

    // Single view: both objects behind one RAC.
    let sys = Votm::builder()
        .algo(algo)
        .threads(THREADS as u32)
        .controller(votm_repro::rac::ControllerConfig {
            window_attempts: 64,
            ..Default::default()
        })
        .build();
    let both = sys.create_view(64 + ACCOUNTS as usize, QuotaMode::Adaptive);
    let single = run(Arc::clone(&both), Arc::clone(&both), 0, 64);
    let s = both.stats();
    println!(
        "single-view : makespan {single:>9} cycles, settled Q = {:2}, aborts = {}",
        s.quota, s.tm.aborts
    );

    // Multi view: independent RAC per object.
    let sys = Votm::builder()
        .algo(algo)
        .threads(THREADS as u32)
        .controller(votm_repro::rac::ControllerConfig {
            window_attempts: 64,
            ..Default::default()
        })
        .build();
    let counter = sys.create_view(64, QuotaMode::Adaptive);
    let accounts = sys.create_view(ACCOUNTS as usize, QuotaMode::Adaptive);
    let multi = run(Arc::clone(&counter), Arc::clone(&accounts), 0, 0);
    let cs = counter.stats();
    let as_ = accounts.stats();
    println!(
        "multi-view  : makespan {multi:>9} cycles, counter Q = {:2} (aborts {}), accounts Q = {:2} (aborts {})",
        cs.quota, cs.tm.aborts, as_.quota, as_.tm.aborts
    );

    println!(
        "multi-view speedup: {:.2}x (Observation 2)",
        single as f64 / multi as f64
    );
    assert!(multi < single, "partitioning should win on this workload");
    assert!(
        as_.quota > cs.quota,
        "cold view must keep more concurrency than the hot one"
    );
    println!("bank_multiview OK");
}
