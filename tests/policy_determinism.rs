//! Per-policy determinism: every contention-management policy is a pure
//! function of the run's seeds, so replaying the same seeded simulation
//! twice under any policy must export byte-identical documents — Chrome
//! trace (every event, timestamp, and `cm_kill` record) and the
//! `votm-obs-snapshot-v1` schema alike.
//!
//! This is the same-seed replay guarantee the scheduler differential
//! (`determinism_differential.rs`) pins for the default path, extended to
//! the whole policy surface: timestamp priorities, Karma's banked work,
//! wait-vs-abort's patience loops, and windowed-greedy's seeded window
//! draws all derive from virtual time and per-thread seeds, never from
//! host entropy.

use votm::{CmPolicy, TmAlgorithm};
use votm_bench::{capture_trace_cm, capture_trace_sim, Settings};
use votm_sim::SimConfig;

fn settings() -> Settings {
    Settings {
        eigen_scale: 0.0003,
        ..Default::default()
    }
}

fn sim(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        ..Default::default()
    }
}

#[test]
fn every_policy_replays_byte_identical_exports() {
    let settings = settings();
    for policy in CmPolicy::ALL {
        for seed in [1u64, 42] {
            let a = capture_trace_cm(&settings, TmAlgorithm::OrecEagerRedo, sim(seed), policy);
            let b = capture_trace_cm(&settings, TmAlgorithm::OrecEagerRedo, sim(seed), policy);
            assert_eq!(
                a.chrome_trace, b.chrome_trace,
                "{policy:?} seed {seed}: chrome trace diverged across replays"
            );
            assert_eq!(
                a.snapshot, b.snapshot,
                "{policy:?} seed {seed}: snapshot export diverged across replays"
            );
            let commits: u64 = a.views.iter().map(|v| v.tm.commits).sum();
            assert!(commits > 0, "{policy:?} seed {seed}: nothing committed");
        }
    }
}

/// The backoff policy is *passive*: the driver takes the exact
/// conflict-handling path the pre-policy code did, so a backoff capture is
/// byte-identical to the default capture — not merely deterministic.
#[test]
fn passive_backoff_matches_the_default_capture_exactly() {
    let settings = settings();
    for algo in [TmAlgorithm::NOrec, TmAlgorithm::OrecEagerRedo] {
        let default = capture_trace_sim(&settings, algo, sim(7));
        let backoff = capture_trace_cm(&settings, algo, sim(7), CmPolicy::Backoff);
        assert_eq!(default.chrome_trace, backoff.chrome_trace, "{algo:?}");
        assert_eq!(default.snapshot, backoff.snapshot, "{algo:?}");
    }
}
