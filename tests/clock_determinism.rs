//! Per-clock determinism: every clock source is a pure function of the
//! run's seeds, so replaying the same seeded simulation twice under any
//! clock kind must export byte-identical documents — Chrome trace (every
//! event, timestamp and abort-reason record) and the
//! `votm-obs-snapshot-v1` schema alike.
//!
//! This mirrors `policy_determinism.rs` for the clock-source surface:
//! shard indices derive from addresses, epoch banking from the commit
//! interleaving, GV5 reuse and SNZI occupancy from virtual time — never
//! from host entropy.

use votm::{ClockKind, CmPolicy, TmAlgorithm};
use votm_bench::{capture_trace_clock, capture_trace_sim, Settings};
use votm_sim::SimConfig;

fn settings() -> Settings {
    Settings {
        eigen_scale: 0.0003,
        ..Default::default()
    }
}

fn sim(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        ..Default::default()
    }
}

#[test]
fn every_clock_replays_byte_identical_exports() {
    let settings = settings();
    for clock in ClockKind::ALL {
        for (algo, seed) in [
            (TmAlgorithm::NOrec, 1u64),
            (TmAlgorithm::OrecEagerRedo, 42),
            (TmAlgorithm::OrecLazy, 42),
        ] {
            let a = capture_trace_clock(&settings, algo, sim(seed), CmPolicy::Backoff, clock);
            let b = capture_trace_clock(&settings, algo, sim(seed), CmPolicy::Backoff, clock);
            assert_eq!(
                a.chrome_trace, b.chrome_trace,
                "{clock:?} {algo:?} seed {seed}: chrome trace diverged across replays"
            );
            assert_eq!(
                a.snapshot, b.snapshot,
                "{clock:?} {algo:?} seed {seed}: snapshot export diverged across replays"
            );
            let commits: u64 = a.views.iter().map(|v| v.tm.commits).sum();
            assert!(
                commits > 0,
                "{clock:?} {algo:?} seed {seed}: nothing committed"
            );
        }
    }
}

/// The global clock is *passive* plumbing: `ClockKind::Global` takes the
/// exact fetch-add path the pre-ClockSource code did, so a global-clock
/// capture is byte-identical to the default capture — not merely
/// deterministic. This is the test-level form of the CI gate's
/// default-rows-bit-identical check.
#[test]
fn global_clock_matches_the_default_capture_exactly() {
    let settings = settings();
    for algo in [TmAlgorithm::NOrec, TmAlgorithm::OrecEagerRedo] {
        let default = capture_trace_sim(&settings, algo, sim(7));
        let global = capture_trace_clock(
            &settings,
            algo,
            sim(7),
            CmPolicy::Backoff,
            ClockKind::Global,
        );
        assert_eq!(default.chrome_trace, global.chrome_trace, "{algo:?}");
        assert_eq!(default.snapshot, global.snapshot, "{algo:?}");
    }
}
