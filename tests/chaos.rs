//! Chaos testing: randomized multi-structure workloads across two views
//! with strict conservation invariants, swept over seeds, algorithms and
//! quota modes. Every token that enters the system must come out exactly
//! once — lost updates, duplicated pops, phantom map entries or leaked
//! nodes all fail the final audit.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use votm_repro::ds::{TxHashMap, TxQueue, TxTreap};
use votm_repro::sim::{FaultPlan, FaultRecord, RunStatus, SimConfig, SimExecutor};
use votm_repro::utils::{SplitMix64, XorShift64};
use votm_repro::votm::{QuotaMode, TmAlgorithm, Votm};

const THREADS: u64 = 8;
const TOKENS_PER_THREAD: u64 = 40;

/// Each token is pushed into the queue (view A), then migrated by a random
/// consumer into either the hash map or the treap (view B), then counted.
fn chaos_round(algo: TmAlgorithm, quota: QuotaMode, seed: u64) {
    chaos_round_inner(algo, quota, seed, None);
}

/// Fault-injected variant: forced aborts and injected delays on top of the
/// same workload. Returns the run's fault log so callers can assert
/// identical-seed ⇒ identical-fault-schedule determinism.
fn chaos_round_with_faults(algo: TmAlgorithm, quota: QuotaMode, seed: u64) -> Vec<FaultRecord> {
    // No injected panics here: a killed task would (correctly) take its
    // unmigrated tokens with it, and this test's contract is exact-once
    // conservation. Panic recovery is covered by the core panic_safety and
    // fault_storm suites.
    let plan = FaultPlan {
        seed: seed ^ 0xfa17_fa17,
        abort_percent: 5,
        delay_percent: 10,
        max_delay: 200,
        ..Default::default()
    };
    chaos_round_inner(algo, quota, seed, Some(plan)).expect("fault plan set")
}

fn chaos_round_inner(
    algo: TmAlgorithm,
    quota: QuotaMode,
    seed: u64,
    plan: Option<FaultPlan>,
) -> Option<Vec<FaultRecord>> {
    let sys = Votm::builder().algo(algo).threads(THREADS as u32).build();
    let qview = sys.create_view(65_536, quota);
    let mview = sys.create_view(262_144, quota);
    let queue = TxQueue::create(&qview);
    let map = TxHashMap::create(&mview, 64);
    let treap = TxTreap::create(&mview);
    let consumed = Arc::new(AtomicU64::new(0));
    let total = THREADS * TOKENS_PER_THREAD;

    let mut seeds = SplitMix64::new(seed);
    let mut ex = SimExecutor::new(SimConfig {
        seed,
        fault_plan: plan,
        ..Default::default()
    });
    for t in 0..THREADS {
        let qview = Arc::clone(&qview);
        let mview = Arc::clone(&mview);
        let consumed = Arc::clone(&consumed);
        let mut rng = XorShift64::new(seeds.next_u64());
        ex.spawn(move |rt| async move {
            // Producer phase: interleave pushes with consumption attempts.
            for i in 0..TOKENS_PER_THREAD {
                let token = t * 10_000 + i;
                qview
                    .transact(&rt, async |tx| queue.push_back(tx, token).await)
                    .await;
                if rng.chance_percent(50) {
                    drain_one(
                        &rt, &qview, &mview, &queue, &map, &treap, &consumed, &mut rng,
                    )
                    .await;
                }
            }
            // Drain phase.
            while consumed.load(Ordering::Relaxed) < total {
                let made_progress = drain_one(
                    &rt, &qview, &mview, &queue, &map, &treap, &consumed, &mut rng,
                )
                .await;
                if !made_progress {
                    rt.charge(500).await; // queue empty but others still pushing
                }
            }
        });
    }
    let out = ex.run();
    assert_eq!(
        out.status,
        RunStatus::Completed,
        "{algo:?} {quota:?} seed {seed}"
    );
    assert_eq!(consumed.load(Ordering::Relaxed), total);
    if plan.is_some() {
        assert!(
            out.faults.aborts > 0 && out.faults.delays > 0,
            "fault plan was configured but injected nothing: {:?}",
            out.faults
        );
    }

    // Final audit: every token present exactly once, in exactly one place.
    let mut ex2 = SimExecutor::new(SimConfig::default());
    let mview2 = Arc::clone(&mview);
    let qview2 = Arc::clone(&qview);
    ex2.spawn(move |rt| async move {
        let qlen = qview2
            .transact_ro(&rt, async |tx| queue.len(tx).await)
            .await;
        assert_eq!(qlen, 0, "queue must be drained");
        let (in_map, in_treap, sum) = mview2
            .transact_ro(&rt, async |tx| {
                let m = map.len(tx).await?;
                let t = treap.len(tx).await?;
                let mut sum = 0u64;
                for th in 0..THREADS {
                    for i in 0..TOKENS_PER_THREAD {
                        let token = th * 10_000 + i;
                        let a = map.get(tx, token).await?;
                        let b = treap.get(tx, token).await?;
                        match (a, b) {
                            (Some(v), None) | (None, Some(v)) => {
                                assert_eq!(v, token + 1, "wrong payload for {token}");
                                sum += 1;
                            }
                            (Some(_), Some(_)) => panic!("token {token} duplicated"),
                            (None, None) => panic!("token {token} lost"),
                        }
                    }
                }
                Ok((m, t, sum))
            })
            .await;
        assert_eq!(in_map + in_treap, THREADS * TOKENS_PER_THREAD);
        assert_eq!(sum, THREADS * TOKENS_PER_THREAD);
    });
    assert_eq!(ex2.run().status, RunStatus::Completed);
    plan.map(|_| out.fault_log)
}

/// Pops one token and files it into a random structure; returns false if
/// the queue was empty.
#[allow(clippy::too_many_arguments)]
async fn drain_one(
    rt: &votm_repro::sim::Rt,
    qview: &votm_repro::votm::View,
    mview: &votm_repro::votm::View,
    queue: &TxQueue,
    map: &TxHashMap,
    treap: &TxTreap,
    consumed: &AtomicU64,
    rng: &mut XorShift64,
) -> bool {
    let popped = qview
        .transact(rt, async |tx| queue.pop_front(tx).await)
        .await;
    let Some(token) = popped else { return false };
    if rng.chance_percent(50) {
        mview
            .transact(rt, async |tx| {
                map.insert(tx, token, token + 1).await?;
                Ok(())
            })
            .await;
    } else {
        mview
            .transact(rt, async |tx| {
                treap.insert(tx, token, token + 1).await?;
                Ok(())
            })
            .await;
    }
    consumed.fetch_add(1, Ordering::Relaxed);
    true
}

#[test]
fn chaos_norec_across_seeds() {
    for seed in [1u64, 17, 333] {
        chaos_round(TmAlgorithm::NOrec, QuotaMode::Fixed(8), seed);
    }
}

#[test]
fn chaos_orec_eager_across_seeds() {
    for seed in [2u64, 18, 334] {
        chaos_round(TmAlgorithm::OrecEagerRedo, QuotaMode::Fixed(8), seed);
    }
}

#[test]
fn chaos_orec_lazy_across_seeds() {
    for seed in [3u64, 19, 335] {
        chaos_round(TmAlgorithm::OrecLazy, QuotaMode::Fixed(8), seed);
    }
}

#[test]
fn chaos_under_adaptive_rac_and_lock_mode() {
    for algo in TmAlgorithm::ALL {
        chaos_round(algo, QuotaMode::Adaptive, 7);
        chaos_round(algo, QuotaMode::Fixed(1), 8); // pure lock mode
    }
}

#[test]
fn chaos_with_fault_injection_conserves_tokens() {
    for seed in [5u64, 21, 337] {
        chaos_round_with_faults(TmAlgorithm::NOrec, QuotaMode::Fixed(8), seed);
        chaos_round_with_faults(TmAlgorithm::OrecEagerRedo, QuotaMode::Fixed(8), seed);
    }
}

#[test]
fn chaos_fault_schedule_is_deterministic_per_seed() {
    // Identical (sim seed, fault seed) pairs must replay the exact same
    // fault schedule, fault for fault — the property that makes a failing
    // chaos run reproducible from its seed alone.
    let a = chaos_round_with_faults(TmAlgorithm::NOrec, QuotaMode::Fixed(8), 41);
    let b = chaos_round_with_faults(TmAlgorithm::NOrec, QuotaMode::Fixed(8), 41);
    assert!(!a.is_empty(), "plan injected nothing");
    assert_eq!(a, b, "same seed must replay the same fault schedule");
    let c = chaos_round_with_faults(TmAlgorithm::NOrec, QuotaMode::Fixed(8), 42);
    assert_ne!(a, c, "different seed should perturb the schedule");
}
