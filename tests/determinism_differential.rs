//! End-to-end scheduler differential: the full STM + RAC + observability
//! stack run under the timer wheel must export byte-identical documents to
//! the same run under the retained reference-heap scheduler, with charge
//! coalescing on or off.
//!
//! This is the top of the determinism pyramid. The executor-level suite
//! (`crates/sim/tests/differential.rs`) pins activation order on fuzzed
//! micro-workloads; this test pins the whole pipeline — virtual timestamps
//! on every trace event, quota-decision timelines, abort-reason counts,
//! latency histograms — through the Chrome trace and
//! `votm-obs-snapshot-v1` exporters, whose output is a canonical
//! serialisation of everything the simulation observed.

use votm::TmAlgorithm;
use votm_bench::{capture_trace_sim, Settings};
use votm_sim::{SchedulerKind, SimConfig};

fn sim(seed: u64, scheduler: SchedulerKind, coalesce: bool) -> SimConfig {
    SimConfig {
        seed,
        scheduler,
        coalesce,
        ..Default::default()
    }
}

#[test]
fn exports_are_byte_identical_across_schedulers() {
    let settings = Settings {
        eigen_scale: 0.0005,
        ..Default::default()
    };
    for algo in [TmAlgorithm::OrecEagerRedo, TmAlgorithm::NOrec] {
        for seed in [1u64, 42] {
            let base = capture_trace_sim(
                &settings,
                algo,
                sim(seed, SchedulerKind::ReferenceHeap, true),
            );
            for (scheduler, coalesce, label) in [
                (SchedulerKind::TimerWheel, true, "wheel"),
                (SchedulerKind::TimerWheel, false, "wheel-nocoalesce"),
                (SchedulerKind::ReferenceHeap, false, "heap-nocoalesce"),
            ] {
                let got = capture_trace_sim(&settings, algo, sim(seed, scheduler, coalesce));
                assert_eq!(
                    base.chrome_trace, got.chrome_trace,
                    "{algo:?} seed {seed} {label}: chrome trace diverged"
                );
                assert_eq!(
                    base.snapshot, got.snapshot,
                    "{algo:?} seed {seed} {label}: snapshot export diverged"
                );
                assert_eq!(
                    base.quota_changes, got.quota_changes,
                    "{algo:?} seed {seed} {label}: quota timeline diverged"
                );
            }
        }
    }
}
