//! Workspace-level integration tests: exercise the whole stack (utils →
//! sim → stm → rac → votm → ds → workloads) through the public API only.

use std::sync::Arc;

use votm_repro::ds::{TxHashMap, TxList, TxQueue};
use votm_repro::model;
use votm_repro::sim::{run_parallel, RunStatus, SimConfig, SimExecutor};
use votm_repro::votm::{Addr, QuotaMode, TmAlgorithm, Votm};

/// A producer/consumer pipeline across two views — queue in one, results
/// map in the other — mirroring Intruder's view partition, checked for
/// exact conservation end to end.
#[test]
fn two_view_pipeline_conserves_all_items() {
    for algo in TmAlgorithm::ALL {
        let sys = Votm::builder().algo(algo).threads(8).build();
        let qview = sys.create_view(16_384, QuotaMode::Adaptive);
        let mview = sys.create_view(65_536, QuotaMode::Adaptive);
        let queue = TxQueue::create(&qview);
        let map = TxHashMap::create(&mview, 128);
        const ITEMS: u64 = 300;
        for i in 0..ITEMS {
            queue.push_back_direct(&qview, i);
        }
        let mut ex = SimExecutor::new(SimConfig::default());
        for _ in 0..8 {
            let qview = Arc::clone(&qview);
            let mview = Arc::clone(&mview);
            ex.spawn(move |rt| async move {
                loop {
                    let item = qview
                        .transact(&rt, async |tx| queue.pop_front(tx).await)
                        .await;
                    let Some(v) = item else { break };
                    mview
                        .transact(&rt, async |tx| {
                            map.insert(tx, v, v * 3).await?;
                            Ok(())
                        })
                        .await;
                }
            });
        }
        assert_eq!(ex.run().status, RunStatus::Completed, "{algo:?}");
        // Verify every item landed exactly once.
        let mut ex2 = SimExecutor::new(SimConfig::default());
        let mview2 = Arc::clone(&mview);
        ex2.spawn(move |rt| async move {
            mview2
                .transact_ro(&rt, async |tx| {
                    assert_eq!(map.len(tx).await?, ITEMS);
                    for i in 0..ITEMS {
                        assert_eq!(map.get(tx, i).await?, Some(i * 3));
                    }
                    Ok(())
                })
                .await;
        });
        assert_eq!(ex2.run().status, RunStatus::Completed, "{algo:?}");
    }
}

/// The measured δ(Q) from a run feeds the analytic model consistently: a
/// view the workload hammers reports δ > 1, and Observation 1 says to
/// decrease — which the adaptive controller indeed did.
#[test]
fn measured_delta_agrees_with_model_advice() {
    let sys = Votm::builder()
        .algo(TmAlgorithm::OrecEagerRedo)
        .threads(16)
        .build();
    // Fixed high quota on a hot view: we *expect* a high measured delta.
    let view = sys.create_view(64, QuotaMode::Fixed(16));
    let mut ex = SimExecutor::new(SimConfig::default());
    for t in 0..16u64 {
        let view = Arc::clone(&view);
        ex.spawn(move |rt| async move {
            let mut rng = votm_repro::utils::XorShift64::new(t + 1);
            for _ in 0..30 {
                view.transact(&rt, async |tx| {
                    // Eigenbench view-1 recipe: long transactions with many
                    // random reads and several random writes over a small
                    // hot array — any concurrent commit invalidates the
                    // read set, so aborted work dominates and delta > 1.
                    let mut acc = 0u64;
                    for k in 0..32 {
                        let a = Addr(rng.next_below(24) as u32);
                        acc = acc.wrapping_add(tx.read(a).await?);
                        if k % 4 == 0 {
                            let w = Addr(rng.next_below(24) as u32);
                            tx.write(w, acc).await?;
                        }
                    }
                    Ok(())
                })
                .await;
            }
        });
    }
    assert_eq!(ex.run().status, RunStatus::Completed);
    let stats = view.stats();
    let delta = stats.delta().expect("Q=16 has a defined delta");
    assert!(
        delta > 1.0,
        "hot view should measure delta > 1, got {delta}"
    );
    assert_eq!(
        model::observation1(Some(delta)),
        model::QuotaAdvice::Decrease
    );
}

/// Real OS threads driving the full stack (gate + STM + list) — validates
/// the atomics under genuine preemption, not just simulated interleaving.
#[test]
fn real_thread_list_inserts_complete_and_sorted() {
    let sys = Arc::new(Votm::builder().algo(TmAlgorithm::NOrec).threads(6).build());
    let view = sys.create_view(65_536, QuotaMode::Adaptive);
    let list = TxList::create(&view);
    let v2 = Arc::clone(&view);
    run_parallel(6, move |t, rt| {
        let view = Arc::clone(&v2);
        async move {
            let mut rng = votm_repro::utils::XorShift64::new(t as u64 + 1);
            for _ in 0..50 {
                let k = rng.next_below(10_000);
                view.transact(&rt, async |tx| list.insert(tx, k).await)
                    .await;
            }
        }
    });
    // Single-threaded verification pass.
    let mut ex = SimExecutor::new(SimConfig::default());
    let v3 = Arc::clone(&view);
    ex.spawn(move |rt| async move {
        let keys = v3.transact_ro(&rt, async |tx| list.to_vec(tx).await).await;
        assert_eq!(keys.len(), 300);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    });
    assert_eq!(ex.run().status, RunStatus::Completed);
}

/// Workload determinism across the full stack: same seeds, same makespan,
/// same statistics — the property every table in EXPERIMENTS.md relies on.
#[test]
fn full_stack_runs_are_reproducible() {
    let run = |seed: u64| {
        let config = {
            let mut c = votm_repro::eigenbench::EigenConfig::paper_table2(0.0002);
            c.n_threads = 8;
            c.seed = seed;
            c
        };
        let res = votm_repro::eigenbench::run_sim(
            &config,
            TmAlgorithm::OrecEagerRedo,
            votm_repro::eigenbench::Version::MultiView,
            [QuotaMode::Adaptive, QuotaMode::Adaptive],
            SimConfig {
                seed,
                ..Default::default()
            },
        );
        (res.outcome.vtime, res.views[0].tm, res.views[1].tm)
    };
    assert_eq!(run(9), run(9));
    assert_ne!(run(9).0, run(10).0, "different seeds should differ");
}

/// The paper's API surface is reachable end to end: create, brk, alloc,
/// transact, free, destroy.
#[test]
fn paper_api_lifecycle() {
    let sys = Votm::builder().reserve_factor(4).threads(2).build();
    let view = sys.create_view(8, QuotaMode::Adaptive);
    assert!(view.alloc_block(16).is_none(), "8-word view can't fit 16");
    assert_eq!(view.brk_view(24), Some(32));
    let block = view.alloc_block(16).expect("fits after brk_view");
    let mut ex = SimExecutor::new(SimConfig::default());
    {
        let view = Arc::clone(&view);
        ex.spawn(move |rt| async move {
            view.transact(&rt, async |tx| {
                tx.write(block, 7).await?;
                let inner = tx.alloc(4)?;
                tx.write(inner, 9).await?;
                tx.free(inner);
                Ok(())
            })
            .await;
        });
    }
    assert_eq!(ex.run().status, RunStatus::Completed);
    assert_eq!(view.heap().load(block), 7);
    assert_eq!(view.heap().live_blocks(), 1, "inner block freed at commit");
    view.free_block(block);
    sys.destroy_view(&view);
    assert!(sys.view(view.id()).is_none());
}
