//! End-to-end checks of the observability layer: a seeded simulator run
//! must export a Chrome trace and a snapshot document that (a) are byte-
//! identical across identically-seeded runs, (b) carry at least one quota
//! decision with its δ(Q) evidence, (c) agree exactly with the per-view
//! statistics counters, and (d) cost nothing in virtual time — recording
//! must not perturb the simulated schedule.

use std::sync::Arc;

use votm::{FlightRecorder, QuotaMode, TmAlgorithm};
use votm_bench::{capture_trace, Settings};
use votm_eigenbench::{run_sim, run_sim_recorded, EigenConfig, Version};
use votm_obs::{AbortReason, EventKind};
use votm_sim::SimConfig;

fn trace_settings() -> Settings {
    Settings {
        eigen_scale: 0.0005,
        ..Default::default()
    }
}

fn small_config() -> EigenConfig {
    let mut c = EigenConfig::paper_table2(0.0005);
    c.n_threads = 8;
    c
}

#[test]
fn same_seed_runs_export_byte_identical_json() {
    let s = trace_settings();
    let a = capture_trace(&s, TmAlgorithm::OrecEagerRedo);
    let b = capture_trace(&s, TmAlgorithm::OrecEagerRedo);
    assert_eq!(
        a.chrome_trace, b.chrome_trace,
        "chrome trace must be deterministic for a fixed seed"
    );
    assert_eq!(
        a.snapshot, b.snapshot,
        "snapshot export must be deterministic for a fixed seed"
    );
    // A different seed produces a different schedule, hence a different
    // trace — determinism is not degenerate constancy.
    let mut s2 = s;
    s2.seed += 1;
    let c = capture_trace(&s2, TmAlgorithm::OrecEagerRedo);
    assert_ne!(a.chrome_trace, c.chrome_trace);
}

#[test]
fn exported_trace_carries_quota_decisions_and_structured_aborts() {
    let s = trace_settings();
    let cap = capture_trace(&s, TmAlgorithm::OrecEagerRedo);
    // The adaptive controller must have moved at least once on the
    // high-contention view, and the decision must carry its δ(Q) sample.
    assert!(
        cap.quota_changes >= 1,
        "adaptive run produced no quota decisions"
    );
    assert!(cap.chrome_trace.contains("\"name\":\"quota-change\""));
    assert!(
        cap.snapshot.contains("\"quota_timeline\":[{\"ts\":"),
        "snapshot must serialise the quota timeline"
    );
    assert!(
        cap.snapshot.contains("\"delta\":0.")
            || cap.snapshot.contains("\"delta\":1.")
            || cap.snapshot.contains("\"delta\":\"inf\""),
        "at least one quota decision must carry a delta sample"
    );
    // Structured abort reasons reached both exports.
    let total_aborts: u64 = cap.views.iter().map(|v| v.tm.aborts).sum();
    assert!(total_aborts > 0, "contended run must abort");
    assert!(cap.chrome_trace.contains("\"reason\":\"orec_conflict\""));
    assert!(cap.snapshot.contains("\"orec_conflict\":"));
    for v in &cap.views {
        assert_eq!(
            v.tm.aborts_by_reason.iter().sum::<u64>(),
            v.tm.aborts,
            "per-reason abort counts must sum to the abort total"
        );
    }
}

#[test]
fn commit_histogram_count_matches_commit_counter() {
    let s = trace_settings();
    let cap = capture_trace(&s, TmAlgorithm::NOrec);
    for v in &cap.views {
        assert_eq!(
            v.hists.commit.count(),
            v.tm.commits,
            "view {}: every commit must land in the latency histogram",
            v.view_id
        );
        assert_eq!(
            v.hists.abort_to_retry.count(),
            v.tm.aborts,
            "view {}: every abort is followed by exactly one retry begin",
            v.view_id
        );
    }
}

#[test]
fn recording_does_not_perturb_virtual_time_or_counters() {
    let config = small_config();
    let quotas = [QuotaMode::Adaptive, QuotaMode::Adaptive];
    let plain = run_sim(
        &config,
        TmAlgorithm::OrecEagerRedo,
        Version::MultiView,
        quotas,
        SimConfig::default(),
    );
    let rec = Arc::new(FlightRecorder::with_default_capacity(
        config.n_threads as usize,
    ));
    let recorded = run_sim_recorded(
        &config,
        TmAlgorithm::OrecEagerRedo,
        Version::MultiView,
        quotas,
        SimConfig::default(),
        Some(Arc::clone(&rec)),
    );
    assert_eq!(
        plain.outcome.vtime, recorded.outcome.vtime,
        "recording must charge no virtual cycles"
    );
    for (p, r) in plain.views.iter().zip(recorded.views.iter()) {
        assert_eq!(p.tm, r.tm, "view {}: counters must not shift", p.view_id);
        assert_eq!(p.quota, r.quota);
    }
    // And the rings actually saw the run.
    let threads = rec.snapshot();
    let begins: u64 = threads
        .iter()
        .flat_map(|t| t.events.iter())
        .filter(|e| matches!(e.kind, EventKind::TxBegin { .. }))
        .count() as u64;
    assert!(begins > 0, "live recorder saw no transaction begins");
}

#[test]
fn fault_injection_shows_up_as_fault_events_and_reasons() {
    use votm_sim::FaultPlan;
    let config = small_config();
    let rec = Arc::new(FlightRecorder::with_default_capacity(
        config.n_threads as usize,
    ));
    let sim = SimConfig {
        fault_plan: Some(FaultPlan {
            seed: 0xFA11,
            abort_percent: 1,
            ..Default::default()
        }),
        ..Default::default()
    };
    let res = run_sim_recorded(
        &config,
        TmAlgorithm::OrecEagerRedo,
        Version::MultiView,
        [QuotaMode::Adaptive, QuotaMode::Adaptive],
        sim,
        Some(Arc::clone(&rec)),
    );
    let injected: u64 = res
        .views
        .iter()
        .map(|v| v.tm.aborts_by_reason[AbortReason::FaultInjected.index()])
        .sum();
    assert!(injected > 0, "fault plan produced no injected aborts");
    let fault_events = rec
        .snapshot()
        .iter()
        .flat_map(|t| t.events.clone())
        .filter(|e| matches!(e.kind, EventKind::Fault { code: 1, .. }))
        .count() as u64;
    assert!(
        fault_events > 0,
        "injected aborts must appear as fault events on the trace"
    );
}
