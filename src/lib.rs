//! Workspace root crate: re-exports the public API of the VOTM reproduction
//! so examples and integration tests can use a single import path.
pub use votm;
pub use votm_bench as bench;
pub use votm_ds as ds;
pub use votm_eigenbench as eigenbench;
pub use votm_intruder as intruder;
pub use votm_model as model;
pub use votm_obs as obs;
pub use votm_rac as rac;
pub use votm_sim as sim;
pub use votm_stm as stm;
pub use votm_utils as utils;
